// Gate-level combinational netlists with black boxes.
//
// This models the paper's reference application: partial equivalence
// checking (PEC) of incomplete designs, where some modules are not yet
// implemented ("black boxes").  A Circuit is a DAG of primary inputs,
// gates, and black-box outputs; every output of a black box is a free
// function of exactly that box's input signals.  Nodes reference only
// earlier nodes, so creation order is a topological order.
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace hqs {

enum class GateOp : std::uint8_t {
    Input,
    Const0,
    Const1,
    And,  ///< n-ary
    Or,   ///< n-ary
    Xor,  ///< n-ary (parity)
    Nand, ///< n-ary
    Nor,  ///< n-ary
    Xnor, ///< n-ary (inverted parity)
    Not,  ///< unary
    Buf,  ///< unary
    BlackBoxOutput,
};

class Circuit {
public:
    using NodeId = std::uint32_t;
    using BoxId = std::uint32_t;

    // ----- construction -----------------------------------------------------
    NodeId addInput(std::string name = "");
    NodeId constant(bool value);
    /// n-ary gate; @p fanins must reference existing nodes.
    NodeId gate(GateOp op, std::vector<NodeId> fanins);
    NodeId gate2(GateOp op, NodeId a, NodeId b) { return gate(op, {a, b}); }
    NodeId notGate(NodeId a) { return gate(GateOp::Not, {a}); }

    /// Declare a black box reading the given signals.
    BoxId addBlackBox(std::vector<NodeId> inputs, std::string name = "");
    /// Add one output of box @p box (a fresh free function of its inputs).
    NodeId blackBoxOutput(BoxId box);

    void addOutput(NodeId n, std::string name = "");

    // ----- access -------------------------------------------------------------
    std::size_t numNodes() const { return nodes_.size(); }
    std::size_t numGates() const;
    const std::vector<NodeId>& inputs() const { return inputs_; }
    const std::vector<NodeId>& outputs() const { return outputs_; }
    std::size_t numBoxes() const { return boxes_.size(); }
    const std::vector<NodeId>& boxInputs(BoxId b) const { return boxes_[b].inputs; }
    const std::vector<NodeId>& boxOutputs(BoxId b) const { return boxes_[b].outputs; }
    const std::string& boxName(BoxId b) const { return boxes_[b].name; }

    GateOp op(NodeId n) const { return nodes_[n].op; }
    const std::vector<NodeId>& fanins(NodeId n) const { return nodes_[n].fanins; }
    /// Box of a BlackBoxOutput node.
    BoxId boxOf(NodeId n) const
    {
        assert(op(n) == GateOp::BlackBoxOutput);
        return nodes_[n].box;
    }
    /// Output position of a BlackBoxOutput node within its box.
    std::size_t boxOutputIndex(NodeId n) const
    {
        assert(op(n) == GateOp::BlackBoxOutput);
        return nodes_[n].boxOutputIndex;
    }

    bool isComplete() const { return boxes_.empty(); }

    // ----- simulation ------------------------------------------------------------
    /// Value provider for black-box outputs: (box, outputIndex, inputValues)
    /// -> output bit.
    using BoxFunction =
        std::function<bool(BoxId, std::size_t, const std::vector<bool>&)>;

    /// Evaluate all nodes under the given primary-input values; black-box
    /// outputs are supplied by @p boxFn (may be null for complete circuits).
    /// Returns the value of every node.
    std::vector<bool> simulate(const std::vector<bool>& inputValues,
                               const BoxFunction& boxFn = nullptr) const;

    /// Values of the designated outputs only.
    std::vector<bool> evaluateOutputs(const std::vector<bool>& inputValues,
                                      const BoxFunction& boxFn = nullptr) const;

private:
    struct Node {
        GateOp op;
        std::vector<NodeId> fanins;
        BoxId box = 0;
        std::size_t boxOutputIndex = 0;
        std::string name;
    };
    struct Box {
        std::vector<NodeId> inputs;
        std::vector<NodeId> outputs;
        std::string name;
    };

    NodeId addNode(Node n);

    std::vector<Node> nodes_;
    std::vector<Box> boxes_;
    std::vector<NodeId> inputs_;
    std::vector<NodeId> outputs_;
};

/// Evaluate a single gate function over fanin values (not for Input /
/// BlackBoxOutput).
bool evalGateOp(GateOp op, const std::vector<bool>& vals);

} // namespace hqs
