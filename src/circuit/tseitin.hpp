// Tseitin encoding of circuits into CNF.
//
// Each node gets one CNF variable; inputs and black-box outputs can be
// pinned to caller-chosen variables (the PEC encoder pins primary inputs to
// universal variables shared between specification and implementation, and
// black-box outputs to the Henkin-quantified existentials).  The emitted
// clause patterns for AND/OR/XOR are exactly the ones the preprocessor's
// gate detection recognizes, mirroring the paper's pipeline where the CNF
// "was generated from a circuit".
#pragma once

#include <functional>
#include <unordered_map>

#include "src/circuit/circuit.hpp"
#include "src/cnf/cnf.hpp"

namespace hqs {

/// Encode @p c into @p out.  Nodes present in @p fixed use the given
/// variable; every other node's variable comes from @p freshVar.
/// Returns the CNF variable of every node.
std::vector<Var> tseitinEncode(const Circuit& c, Cnf& out,
                               const std::unordered_map<Circuit::NodeId, Var>& fixed,
                               const std::function<Var()>& freshVar);

} // namespace hqs
