// Parametric generators for the paper's seven PEC benchmark families.
//
// The original evaluation uses 1820 partial-equivalence-checking instances:
// adders, the `bitcell` and `lookahead` arbiter implementations from Dally &
// Harting [31], the `pec_xor` family from Finkbeiner & Tentrup [15], and PEC
// problems on the ISCAS-85-derived circuits z4 (carry-skip adder), comp
// (magnitude comparator), and C432 (27-channel priority interrupt
// controller).  Those exact netlists are not redistributable, so each
// generator here produces a structurally matching parametric circuit pair:
// a complete specification and an implementation with two (or more) black
// boxes whose input cones are incomparable — the source of the genuine
// Henkin dependencies that make these problems DQBF-hard.  The `realizable`
// flag selects whether the black boxes see enough signals to implement the
// missing logic (SAT) or are starved of a needed signal (UNSAT), which is
// exactly how the original families mix satisfiable and unsatisfiable
// instances.
#pragma once

#include <string>
#include <vector>

#include "src/circuit/circuit.hpp"

namespace hqs {

enum class Family { Adder, Bitcell, Lookahead, PecXor, Z4, Comp, C432 };

std::string toString(Family f);
std::vector<Family> allFamilies();

/// A PEC problem: does some implementation of the black boxes make `impl`
/// equivalent to `spec`?  `expectedRealizable` is the ground truth by
/// construction (used by tests and reported by the bench harness).
struct PecInstance {
    std::string name;
    Family family;
    Circuit spec; ///< complete reference circuit
    Circuit impl; ///< same I/O, with black boxes
    bool expectedRealizable;
};

/// Build one instance.  @p width scales the circuit (bits / request lines);
/// minimum sensible width is 3.
PecInstance makeInstance(Family family, unsigned width, bool realizable);

/// Extended form: @p boxes controls how many black boxes the implementation
/// has (>= 2; capped by the family's structure — cell-based families can
/// place up to width-1 boxes, pec_xor up to width/2 segments, c432 at most
/// 3 group encoders, lookahead and z4 are fixed at 2).  More boxes mean
/// more pairwise-incomparable dependency sets, i.e. a larger minimum
/// elimination set for the MaxSAT selection.
PecInstance makeInstance(Family family, unsigned width, bool realizable, unsigned boxes);

} // namespace hqs
