// ASCII AIGER ("aag") reader/writer for combinational AIGs.
//
// The interchange format of the AIG ecosystem (ABC, aigpp, AIGSOLVE, the
// HWMCC suites).  Only the combinational subset is supported: latches are
// rejected on read and never written.  On write, inputs are emitted in
// ascending external-variable order; on read, the i-th input maps to
// external variable i.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/aig/aig.hpp"
#include "src/cnf/dimacs.hpp" // ParseError

namespace hqs {

/// Write the cones of @p outputs in aag format.
void writeAiger(std::ostream& os, const Aig& aig, const std::vector<AigEdge>& outputs);
std::string toAigerString(const Aig& aig, const std::vector<AigEdge>& outputs);

struct AigerFile {
    /// External variables of the inputs, in header order (input i -> var i).
    std::vector<Var> inputs;
    std::vector<AigEdge> outputs;
};

/// Parse an aag file into @p aig.  Throws ParseError on malformed input or
/// sequential (latch) files.
AigerFile readAiger(std::istream& is, Aig& aig);
AigerFile readAigerString(const std::string& text, Aig& aig);

} // namespace hqs
