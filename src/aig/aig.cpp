#include "src/aig/aig.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "src/base/fault.hpp"
#include "src/obs/obs.hpp"

namespace hqs {

Aig::Aig()
{
    nodes_.push_back(Node{}); // node 0: the constant (FALSE as uncomplemented)
}

AigEdge Aig::variable(Var v)
{
    auto it = inputOfVar_.find(v);
    if (it != inputOfVar_.end()) return AigEdge(it->second, false);
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    Node n;
    n.extVar = v;
    nodes_.push_back(n);
    inputOfVar_.emplace(v, idx);
    return AigEdge(idx, false);
}

bool Aig::hasVariable(Var v) const { return inputOfVar_.contains(v); }

bool Aig::isInput(AigEdge e) const { return node(e).extVar != kNoVar; }

Var Aig::inputVariable(AigEdge e) const
{
    assert(isInput(e));
    return node(e).extVar;
}

bool Aig::isAnd(AigEdge e) const
{
    return e.nodeIndex() != 0 && node(e).extVar == kNoVar;
}

AigEdge Aig::fanin0(AigEdge e) const
{
    assert(isAnd(e));
    return node(e).fanin0;
}

AigEdge Aig::fanin1(AigEdge e) const
{
    assert(isAnd(e));
    return node(e).fanin1;
}

AigEdge Aig::mkAnd(AigEdge a, AigEdge b)
{
    // Constant folding and trivial cases.
    if (a == constFalse() || b == constFalse()) return constFalse();
    if (a == constTrue()) return b;
    if (b == constTrue()) return a;
    if (a == b) return a;
    if (a == ~b) return constFalse();
    return mkAndRaw(a, b);
}

AigEdge Aig::mkAndRaw(AigEdge a, AigEdge b)
{
    if (b < a) std::swap(a, b);
    const std::uint64_t key = andKey(a, b);
    auto it = strash_.find(key);
    if (it != strash_.end()) return AigEdge(it->second, false);
    // Each strash miss allocates a node: the memory hot path, and therefore
    // an injection site for testing bad_alloc recovery (one relaxed atomic
    // load when no fault is armed).
    fault::checkpointAlloc("aig-alloc");
    OBS_COUNT("aig.ands", 1);
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    Node n;
    n.fanin0 = a;
    n.fanin1 = b;
    nodes_.push_back(n);
    strash_.emplace(key, idx);
    return AigEdge(idx, false);
}

AigEdge Aig::mkXor(AigEdge a, AigEdge b)
{
    // a ^ b  =  ~(~(a & ~b) & ~(~a & b))
    return mkOr(mkAnd(a, ~b), mkAnd(~a, b));
}

AigEdge Aig::mkIte(AigEdge c, AigEdge t, AigEdge e)
{
    return mkOr(mkAnd(c, t), mkAnd(~c, e));
}

AigEdge Aig::mkAndN(const std::vector<AigEdge>& es)
{
    AigEdge acc = constTrue();
    for (AigEdge e : es) acc = mkAnd(acc, e);
    return acc;
}

AigEdge Aig::mkOrN(const std::vector<AigEdge>& es)
{
    AigEdge acc = constFalse();
    for (AigEdge e : es) acc = mkOr(acc, e);
    return acc;
}

std::vector<Var> Aig::support(AigEdge root) const
{
    std::vector<Var> out;
    std::vector<std::uint32_t> stack{root.nodeIndex()};
    std::vector<bool> visited(nodes_.size(), false);
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        if (visited[idx]) continue;
        visited[idx] = true;
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            out.push_back(n.extVar);
        } else if (idx != 0) {
            stack.push_back(n.fanin0.nodeIndex());
            stack.push_back(n.fanin1.nodeIndex());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t Aig::coneSize(AigEdge root) const
{
    std::size_t count = 0;
    std::vector<std::uint32_t> stack{root.nodeIndex()};
    std::vector<bool> visited(nodes_.size(), false);
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        if (visited[idx]) continue;
        visited[idx] = true;
        const Node& n = nodes_[idx];
        if (idx != 0 && n.extVar == kNoVar) {
            ++count;
            stack.push_back(n.fanin0.nodeIndex());
            stack.push_back(n.fanin1.nodeIndex());
        }
    }
    return count;
}

bool Aig::evaluate(AigEdge root, const std::vector<bool>& assignment) const
{
    // Iterative post-order evaluation with a per-call value cache.
    std::vector<std::uint8_t> value(nodes_.size(), 2); // 2 = not computed
    std::vector<std::uint32_t> stack{root.nodeIndex()};
    value[0] = 0;
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        if (value[idx] != 2) {
            stack.pop_back();
            continue;
        }
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            value[idx] = (n.extVar < assignment.size() && assignment[n.extVar]) ? 1 : 0;
            stack.pop_back();
            continue;
        }
        const std::uint32_t i0 = n.fanin0.nodeIndex();
        const std::uint32_t i1 = n.fanin1.nodeIndex();
        if (value[i0] == 2) {
            stack.push_back(i0);
            continue;
        }
        if (value[i1] == 2) {
            stack.push_back(i1);
            continue;
        }
        const bool v0 = (value[i0] != 0) != n.fanin0.complemented();
        const bool v1 = (value[i1] != 0) != n.fanin1.complemented();
        value[idx] = (v0 && v1) ? 1 : 0;
        stack.pop_back();
    }
    return (value[root.nodeIndex()] != 0) != root.complemented();
}

std::uint64_t Aig::simulate(AigEdge root,
                            const std::unordered_map<Var, std::uint64_t>& inputWords) const
{
    std::vector<std::uint64_t> word(nodes_.size(), 0);
    std::vector<std::uint8_t> done(nodes_.size(), 0);
    done[0] = 1; // constant: all-zero word (FALSE)
    std::vector<std::uint32_t> stack{root.nodeIndex()};
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        if (done[idx]) {
            stack.pop_back();
            continue;
        }
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            auto it = inputWords.find(n.extVar);
            word[idx] = (it != inputWords.end()) ? it->second : 0;
            done[idx] = 1;
            stack.pop_back();
            continue;
        }
        const std::uint32_t i0 = n.fanin0.nodeIndex();
        const std::uint32_t i1 = n.fanin1.nodeIndex();
        if (!done[i0]) {
            stack.push_back(i0);
            continue;
        }
        if (!done[i1]) {
            stack.push_back(i1);
            continue;
        }
        const std::uint64_t w0 = n.fanin0.complemented() ? ~word[i0] : word[i0];
        const std::uint64_t w1 = n.fanin1.complemented() ? ~word[i1] : word[i1];
        word[idx] = w0 & w1;
        done[idx] = 1;
        stack.pop_back();
    }
    const std::uint64_t w = word[root.nodeIndex()];
    return root.complemented() ? ~w : w;
}

void Aig::garbageCollect(std::vector<AigEdge*> roots)
{
    // Mark reachable nodes.
    std::vector<bool> reachable(nodes_.size(), false);
    reachable[0] = true;
    std::vector<std::uint32_t> stack;
    for (AigEdge* r : roots) stack.push_back(r->nodeIndex());
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        if (reachable[idx]) continue;
        reachable[idx] = true;
        const Node& n = nodes_[idx];
        if (n.extVar == kNoVar && idx != 0) {
            stack.push_back(n.fanin0.nodeIndex());
            stack.push_back(n.fanin1.nodeIndex());
        }
    }

    // Rebuild node pool in index order (fanins always precede fanouts).
    std::vector<std::uint32_t> remap(nodes_.size(), 0);
    std::vector<Node> newNodes;
    newNodes.reserve(nodes_.size());
    std::unordered_map<std::uint64_t, std::uint32_t> newStrash;
    std::unordered_map<Var, std::uint32_t> newInputs;
    for (std::uint32_t idx = 0; idx < nodes_.size(); ++idx) {
        if (!reachable[idx]) continue;
        const Node& n = nodes_[idx];
        const auto newIdx = static_cast<std::uint32_t>(newNodes.size());
        remap[idx] = newIdx;
        Node m = n;
        if (idx != 0 && n.extVar == kNoVar) {
            m.fanin0 = AigEdge(remap[n.fanin0.nodeIndex()], n.fanin0.complemented());
            m.fanin1 = AigEdge(remap[n.fanin1.nodeIndex()], n.fanin1.complemented());
            newStrash.emplace(andKey(m.fanin0, m.fanin1), newIdx);
        } else if (n.extVar != kNoVar) {
            newInputs.emplace(n.extVar, newIdx);
        }
        newNodes.push_back(m);
    }
    nodes_ = std::move(newNodes);
    strash_ = std::move(newStrash);
    inputOfVar_ = std::move(newInputs);
    for (AigEdge* r : roots) {
        *r = AigEdge(remap[r->nodeIndex()], r->complemented());
    }
}

std::ostream& operator<<(std::ostream& os, AigEdge e)
{
    if (!e.isValid()) return os << "edge-invalid";
    return os << (e.complemented() ? "~n" : "n") << e.nodeIndex();
}

} // namespace hqs
