#include "src/aig/aig.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>

#include "src/base/fault.hpp"
#include "src/obs/obs.hpp"

namespace hqs {

namespace {

/// Smallest power of two >= @p n (and >= @p floor).
std::size_t nextPow2(std::size_t n, std::size_t floor)
{
    std::size_t cap = floor;
    while (cap < n) cap <<= 1;
    return cap;
}

constexpr std::size_t kStrashInitialSize = 1u << 10;

} // namespace

Aig::Aig()
{
    nodes_.push_back(Node{}); // node 0: the constant (FALSE as uncomplemented)
    strash_.assign(kStrashInitialSize, 0u);
}

AigEdge Aig::variable(Var v)
{
    auto it = inputOfVar_.find(v);
    if (it != inputOfVar_.end()) return AigEdge(it->second, false);
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    Node n;
    n.extVar = v;
    nodes_.push_back(n);
    inputOfVar_.emplace(v, idx);
    stats_.peakAllocatedNodes = std::max<std::uint64_t>(stats_.peakAllocatedNodes, nodes_.size());
    return AigEdge(idx, false);
}

bool Aig::hasVariable(Var v) const { return inputOfVar_.contains(v); }

bool Aig::isInput(AigEdge e) const { return node(e).extVar != kNoVar; }

Var Aig::inputVariable(AigEdge e) const
{
    assert(isInput(e));
    return node(e).extVar;
}

bool Aig::isAnd(AigEdge e) const
{
    return e.nodeIndex() != 0 && node(e).extVar == kNoVar;
}

AigEdge Aig::fanin0(AigEdge e) const
{
    assert(isAnd(e));
    return node(e).fanin0;
}

AigEdge Aig::fanin1(AigEdge e) const
{
    assert(isAnd(e));
    return node(e).fanin1;
}

AigEdge Aig::mkAnd(AigEdge a, AigEdge b)
{
    // Constant folding and trivial cases.
    if (a == constFalse() || b == constFalse()) return constFalse();
    if (a == constTrue()) return b;
    if (b == constTrue()) return a;
    if (a == b) return a;
    if (a == ~b) return constFalse();
    return mkAndRaw(a, b);
}

std::uint64_t Aig::strashHash(std::uint32_t aCode, std::uint32_t bCode)
{
    // splitmix64 finalizer over the packed fanin pair: cheap and uniform
    // enough that linear probing stays short at <= 0.7 load.
    std::uint64_t z = (static_cast<std::uint64_t>(aCode) << 32) | bCode;
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ull;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebull;
    z ^= z >> 31;
    return z;
}

std::uint64_t Aig::opHash(std::uint32_t nodeIdx, Var v, std::uint32_t gCode)
{
    return strashHash(nodeIdx, gCode) ^
           (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull);
}

AigEdge Aig::mkAndRaw(AigEdge a, AigEdge b)
{
    if (b < a) std::swap(a, b);
    const std::size_t mask = strash_.size() - 1;
    std::size_t slot = static_cast<std::size_t>(strashHash(a.code(), b.code())) & mask;
    std::uint64_t probes = 1;
    while (const std::uint32_t entry = strash_[slot]) {
        const Node& n = nodes_[entry - 1];
        if (n.fanin0 == a && n.fanin1 == b) {
            stats_.strashProbes += probes;
            return AigEdge(entry - 1, false);
        }
        slot = (slot + 1) & mask;
        ++probes;
    }
    stats_.strashProbes += probes;
    // Each strash miss allocates a node: the memory hot path, and therefore
    // an injection site for testing bad_alloc recovery (one relaxed atomic
    // load when no fault is armed).
    fault::checkpointAlloc("aig-alloc");
    OBS_COUNT("aig.ands", 1);
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    Node n;
    n.fanin0 = a;
    n.fanin1 = b;
    nodes_.push_back(n);
    stats_.peakAllocatedNodes = std::max<std::uint64_t>(stats_.peakAllocatedNodes, nodes_.size());
    strash_[slot] = idx + 1;
    ++strashCount_;
    // Grow at 0.7 load so probe chains stay short.
    if ((strashCount_ + 1) * 10 >= strash_.size() * 7) strashGrow();
    return AigEdge(idx, false);
}

void Aig::strashInsertNew(std::uint32_t idx)
{
    const Node& n = nodes_[idx];
    const std::size_t mask = strash_.size() - 1;
    std::size_t slot =
        static_cast<std::size_t>(strashHash(n.fanin0.code(), n.fanin1.code())) & mask;
    while (strash_[slot] != 0) slot = (slot + 1) & mask;
    strash_[slot] = idx + 1;
}

void Aig::strashGrow()
{
    std::vector<std::uint32_t> old = std::move(strash_);
    strash_.assign(old.size() * 2, 0u);
    for (const std::uint32_t entry : old) {
        if (entry != 0) strashInsertNew(entry - 1);
    }
    ++stats_.strashResizes;
}

AigEdge Aig::mkXor(AigEdge a, AigEdge b)
{
    // a ^ b  =  ~(~(a & ~b) & ~(~a & b))
    return mkOr(mkAnd(a, ~b), mkAnd(~a, b));
}

AigEdge Aig::mkIte(AigEdge c, AigEdge t, AigEdge e)
{
    return mkOr(mkAnd(c, t), mkAnd(~c, e));
}

AigEdge Aig::mkAndN(const std::vector<AigEdge>& es)
{
    AigEdge acc = constTrue();
    for (AigEdge e : es) acc = mkAnd(acc, e);
    return acc;
}

AigEdge Aig::mkOrN(const std::vector<AigEdge>& es)
{
    AigEdge acc = constFalse();
    for (AigEdge e : es) acc = mkOr(acc, e);
    return acc;
}

std::vector<Var> Aig::support(AigEdge root) const
{
    std::vector<Var> out;
    trav_.reset(nodes_.size());
    stack_.clear();
    stack_.push_back(root.nodeIndex());
    while (!stack_.empty()) {
        const std::uint32_t idx = stack_.back();
        stack_.pop_back();
        if (trav_.has(idx)) continue;
        trav_.set(idx, 1);
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            out.push_back(n.extVar);
        } else if (idx != 0) {
            stack_.push_back(n.fanin0.nodeIndex());
            stack_.push_back(n.fanin1.nodeIndex());
        }
    }
    std::sort(out.begin(), out.end());
    return out;
}

std::size_t Aig::coneSize(AigEdge root) const
{
    std::size_t count = 0;
    trav_.reset(nodes_.size());
    stack_.clear();
    stack_.push_back(root.nodeIndex());
    while (!stack_.empty()) {
        const std::uint32_t idx = stack_.back();
        stack_.pop_back();
        if (trav_.has(idx)) continue;
        trav_.set(idx, 1);
        const Node& n = nodes_[idx];
        if (idx != 0 && n.extVar == kNoVar) {
            ++count;
            stack_.push_back(n.fanin0.nodeIndex());
            stack_.push_back(n.fanin1.nodeIndex());
        }
    }
    return count;
}

bool Aig::evaluate(AigEdge root, const std::vector<bool>& assignment) const
{
    // Iterative post-order evaluation; slot holds the node's value.
    trav_.reset(nodes_.size());
    trav_.set(0, 0);
    stack_.clear();
    stack_.push_back(root.nodeIndex());
    while (!stack_.empty()) {
        const std::uint32_t idx = stack_.back();
        if (trav_.has(idx)) {
            stack_.pop_back();
            continue;
        }
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            trav_.set(idx, (n.extVar < assignment.size() && assignment[n.extVar]) ? 1 : 0);
            stack_.pop_back();
            continue;
        }
        const std::uint32_t i0 = n.fanin0.nodeIndex();
        const std::uint32_t i1 = n.fanin1.nodeIndex();
        if (!trav_.has(i0)) {
            stack_.push_back(i0);
            continue;
        }
        if (!trav_.has(i1)) {
            stack_.push_back(i1);
            continue;
        }
        const bool v0 = (trav_.get(i0) != 0) != n.fanin0.complemented();
        const bool v1 = (trav_.get(i1) != 0) != n.fanin1.complemented();
        trav_.set(idx, (v0 && v1) ? 1 : 0);
        stack_.pop_back();
    }
    return (trav_.get(root.nodeIndex()) != 0) != root.complemented();
}

std::uint64_t Aig::simulate(AigEdge root,
                            const std::unordered_map<Var, std::uint64_t>& inputWords) const
{
    // Iterative post-order simulation; slot holds the node's 64-bit word.
    trav_.reset(nodes_.size());
    trav_.set(0, 0); // constant: all-zero word (FALSE)
    stack_.clear();
    stack_.push_back(root.nodeIndex());
    while (!stack_.empty()) {
        const std::uint32_t idx = stack_.back();
        if (trav_.has(idx)) {
            stack_.pop_back();
            continue;
        }
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            auto it = inputWords.find(n.extVar);
            trav_.set(idx, (it != inputWords.end()) ? it->second : 0);
            stack_.pop_back();
            continue;
        }
        const std::uint32_t i0 = n.fanin0.nodeIndex();
        const std::uint32_t i1 = n.fanin1.nodeIndex();
        if (!trav_.has(i0)) {
            stack_.push_back(i0);
            continue;
        }
        if (!trav_.has(i1)) {
            stack_.push_back(i1);
            continue;
        }
        const std::uint64_t w0 = n.fanin0.complemented() ? ~trav_.get(i0) : trav_.get(i0);
        const std::uint64_t w1 = n.fanin1.complemented() ? ~trav_.get(i1) : trav_.get(i1);
        trav_.set(idx, w0 & w1);
        stack_.pop_back();
    }
    const std::uint64_t w = trav_.get(root.nodeIndex());
    return root.complemented() ? ~w : w;
}

AigEdge Aig::cofactorInto(Aig& dst, AigEdge root, Var v, bool value) const
{
    // Thread-safety contract: read-only on *this*, local scratch only (no
    // trav_/stack_/opCache_/stats_), all mutation confined to dst.
    const AigEdge image = value ? dst.constTrue() : dst.constFalse();
    std::vector<AigEdge> result(nodes_.size(), AigEdge());
    result[0] = dst.constFalse();
    std::vector<std::uint32_t> stack{root.nodeIndex()};
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        if (result[idx].isValid()) {
            stack.pop_back();
            continue;
        }
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            result[idx] = (n.extVar == v) ? image : dst.variable(n.extVar);
            stack.pop_back();
            continue;
        }
        const std::uint32_t i0 = n.fanin0.nodeIndex();
        const std::uint32_t i1 = n.fanin1.nodeIndex();
        if (!result[i0].isValid()) {
            stack.push_back(i0);
            continue;
        }
        if (!result[i1].isValid()) {
            stack.push_back(i1);
            continue;
        }
        const AigEdge a = result[i0] ^ n.fanin0.complemented();
        const AigEdge b = result[i1] ^ n.fanin1.complemented();
        result[idx] = dst.mkAnd(a, b);
        stack.pop_back();
    }
    return result[root.nodeIndex()] ^ root.complemented();
}

AigEdge Aig::importCone(const Aig& src, AigEdge root)
{
    std::vector<AigEdge> result(src.nodes_.size(), AigEdge());
    result[0] = constFalse();
    std::vector<std::uint32_t> stack{root.nodeIndex()};
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        if (result[idx].isValid()) {
            stack.pop_back();
            continue;
        }
        const Node& n = src.nodes_[idx];
        if (n.extVar != kNoVar) {
            result[idx] = variable(n.extVar);
            stack.pop_back();
            continue;
        }
        const std::uint32_t i0 = n.fanin0.nodeIndex();
        const std::uint32_t i1 = n.fanin1.nodeIndex();
        if (!result[i0].isValid()) {
            stack.push_back(i0);
            continue;
        }
        if (!result[i1].isValid()) {
            stack.push_back(i1);
            continue;
        }
        const AigEdge a = result[i0] ^ n.fanin0.complemented();
        const AigEdge b = result[i1] ^ n.fanin1.complemented();
        result[idx] = mkAnd(a, b);
        stack.pop_back();
    }
    return result[root.nodeIndex()] ^ root.complemented();
}

void Aig::garbageCollect(std::vector<AigEdge*> roots)
{
    const std::size_t oldSize = nodes_.size();
    stats_.peakAllocatedNodes = std::max<std::uint64_t>(stats_.peakAllocatedNodes, oldSize);

    // Mark reachable nodes.
    std::vector<bool> reachable(oldSize, false);
    reachable[0] = true;
    std::vector<std::uint32_t> stack;
    for (AigEdge* r : roots) stack.push_back(r->nodeIndex());
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        if (reachable[idx]) continue;
        reachable[idx] = true;
        const Node& n = nodes_[idx];
        if (n.extVar == kNoVar && idx != 0) {
            stack.push_back(n.fanin0.nodeIndex());
            stack.push_back(n.fanin1.nodeIndex());
        }
    }

    // Compact the node pool in index order (fanins always precede fanouts).
    std::vector<std::uint32_t> remap(oldSize, 0);
    std::vector<Node> newNodes;
    newNodes.reserve(oldSize);
    std::unordered_map<Var, std::uint32_t> newInputs;
    std::size_t liveAnds = 0;
    for (std::uint32_t idx = 0; idx < oldSize; ++idx) {
        if (!reachable[idx]) continue;
        const Node& n = nodes_[idx];
        const auto newIdx = static_cast<std::uint32_t>(newNodes.size());
        remap[idx] = newIdx;
        Node m = n;
        if (idx != 0 && n.extVar == kNoVar) {
            m.fanin0 = AigEdge(remap[n.fanin0.nodeIndex()], n.fanin0.complemented());
            m.fanin1 = AigEdge(remap[n.fanin1.nodeIndex()], n.fanin1.complemented());
            ++liveAnds;
        } else if (n.extVar != kNoVar) {
            newInputs.emplace(n.extVar, newIdx);
        }
        newNodes.push_back(m);
    }
    nodes_ = std::move(newNodes);
    inputOfVar_ = std::move(newInputs);

    // Rehash the strash over the surviving AND nodes at <= 0.5 load.
    strash_.assign(nextPow2(liveAnds * 2 + 1, kStrashInitialSize), 0u);
    strashCount_ = liveAnds;
    for (std::uint32_t idx = 1; idx < nodes_.size(); ++idx) {
        if (nodes_[idx].extVar == kNoVar) strashInsertNew(idx);
    }

    // Remap surviving operation-cache entries instead of discarding them:
    // an entry whose node, argument, and result cones all survived is still
    // a valid memo under the new indices.
    if (!opCache_.empty()) {
        std::vector<OpEntry> newCache(opCache_.size());
        for (const OpEntry& e : opCache_) {
            if (e.key == kOpEmptyKey) continue;
            const auto nodeIdx = static_cast<std::uint32_t>(e.key >> 32);
            const AigEdge g = AigEdge::fromCode(static_cast<std::uint32_t>(e.key));
            const AigEdge res = AigEdge::fromCode(e.res);
            if (nodeIdx >= oldSize || !reachable[nodeIdx]) continue;
            if (g.nodeIndex() >= oldSize || !reachable[g.nodeIndex()]) continue;
            if (res.nodeIndex() >= oldSize || !reachable[res.nodeIndex()]) continue;
            const std::uint32_t newNode = remap[nodeIdx];
            const AigEdge newG = AigEdge(remap[g.nodeIndex()], g.complemented());
            const AigEdge newRes = AigEdge(remap[res.nodeIndex()], res.complemented());
            OpEntry m;
            m.key = (static_cast<std::uint64_t>(newNode) << 32) | newG.code();
            m.var = e.var;
            m.res = newRes.code();
            const std::size_t slot =
                static_cast<std::size_t>(opHash(newNode, e.var, newG.code())) &
                (newCache.size() - 1);
            newCache[slot] = m;
        }
        opCache_ = std::move(newCache);
    }

    for (AigEdge* r : roots) {
        *r = AigEdge(remap[r->nodeIndex()], r->complemented());
    }

    ++stats_.gcRuns;
    stats_.gcReclaimedNodes += oldSize - nodes_.size();
    stats_.peakLiveNodes = std::max<std::uint64_t>(stats_.peakLiveNodes, nodes_.size());
    publishKernelStats();
}

void Aig::publishKernelStats()
{
    stats_.peakAllocatedNodes = std::max<std::uint64_t>(stats_.peakAllocatedNodes, nodes_.size());
    const AigKernelStats& s = stats_;
    AigKernelStats& p = published_;
    OBS_COUNT("aig.strash.probes", static_cast<std::int64_t>(s.strashProbes - p.strashProbes));
    OBS_COUNT("aig.strash.resizes", static_cast<std::int64_t>(s.strashResizes - p.strashResizes));
    OBS_COUNT("aig.opcache.hits", static_cast<std::int64_t>(s.opCacheHits - p.opCacheHits));
    OBS_COUNT("aig.opcache.misses", static_cast<std::int64_t>(s.opCacheMisses - p.opCacheMisses));
    OBS_COUNT("aig.gc.runs", static_cast<std::int64_t>(s.gcRuns - p.gcRuns));
    OBS_COUNT("aig.gc.reclaimed",
              static_cast<std::int64_t>(s.gcReclaimedNodes - p.gcReclaimedNodes));
    OBS_GAUGE_MAX("aig.nodes.peak_live", static_cast<std::int64_t>(s.peakLiveNodes));
    OBS_GAUGE_MAX("aig.nodes.peak_alloc", static_cast<std::int64_t>(s.peakAllocatedNodes));
    published_ = stats_;
}

std::ostream& operator<<(std::ostream& os, AigEdge e)
{
    if (!e.isValid()) return os << "edge-invalid";
    return os << (e.complemented() ? "~n" : "n") << e.nodeIndex();
}

} // namespace hqs
