// Syntactic unit/pure variable detection on AIGs (Theorem 6 of the paper).
//
// One top-down sweep over the cone, processing nodes in descending index
// order (a node's fanins always have smaller indices, so all parents of a
// node are handled before the node itself).  Per node we track:
//   * reachEven / reachOdd — parities of the negation counts over all paths
//     from the node to the output (the root edge's complement bit counts);
//   * clean — existence of a negation-free path to the output.
// Then for an input node n_v:
//   * positive unit  iff clean(n_v)                      (negation-free path)
//   * negative unit  iff some clean parent reaches n_v over a complemented
//     edge (the "only negation right at the variable" case)
//   * positive pure  iff reachEven and not reachOdd
//   * negative pure  iff reachOdd  and not reachEven
// Cost: O(|phi| + |V|), as stated in the paper.  The per-node flags live
// as bits in the manager's generation-stamped TraversalCache, so the sweep
// allocates nothing.
#include "src/aig/aig.hpp"

namespace hqs {

namespace {
constexpr std::uint64_t kReachEven = 1;
constexpr std::uint64_t kReachOdd = 2;
constexpr std::uint64_t kClean = 4;
constexpr std::uint64_t kNegUnit = 8;
} // namespace

UnitPureInfo Aig::detectUnitPure(AigEdge root) const
{
    UnitPureInfo info;
    if (isConstant(root)) return info;

    const std::uint32_t rootIdx = root.nodeIndex();
    trav_.reset(nodes_.size());

    if (root.complemented()) {
        std::uint64_t bits = kReachOdd;
        // phi = ~v: assigning v = 1 falsifies phi, so v is negative unit.
        if (nodes_[rootIdx].extVar != kNoVar) bits |= kNegUnit;
        trav_.set(rootIdx, bits);
    } else {
        trav_.set(rootIdx, kReachEven | kClean);
    }

    for (std::uint32_t idx = rootIdx; idx > 0; --idx) {
        if (!trav_.has(idx)) continue; // outside the cone
        const std::uint64_t bits = trav_.get(idx);
        if ((bits & (kReachEven | kReachOdd)) == 0) continue;
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            const Var v = n.extVar;
            if (bits & kClean) info.posUnit.push_back(v);
            if (bits & kNegUnit) info.negUnit.push_back(v);
            if ((bits & kReachEven) && !(bits & kReachOdd)) info.posPure.push_back(v);
            if ((bits & kReachOdd) && !(bits & kReachEven)) info.negPure.push_back(v);
            continue;
        }
        for (const AigEdge f : {n.fanin0, n.fanin1}) {
            const std::uint32_t child = f.nodeIndex();
            if (child == 0) continue; // constant
            std::uint64_t childBits = 0;
            if (f.complemented()) {
                if (bits & kReachEven) childBits |= kReachOdd;
                if (bits & kReachOdd) childBits |= kReachEven;
                if ((bits & kClean) && nodes_[child].extVar != kNoVar) childBits |= kNegUnit;
            } else {
                childBits |= bits & (kReachEven | kReachOdd | kClean);
            }
            if (childBits != 0) trav_.orBits(child, childBits);
        }
    }
    return info;
}

} // namespace hqs
