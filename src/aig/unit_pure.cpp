// Syntactic unit/pure variable detection on AIGs (Theorem 6 of the paper).
//
// One top-down sweep over the cone, processing nodes in descending index
// order (a node's fanins always have smaller indices, so all parents of a
// node are handled before the node itself).  Per node we track:
//   * reachEven / reachOdd — parities of the negation counts over all paths
//     from the node to the output (the root edge's complement bit counts);
//   * clean — existence of a negation-free path to the output.
// Then for an input node n_v:
//   * positive unit  iff clean(n_v)                      (negation-free path)
//   * negative unit  iff some clean parent reaches n_v over a complemented
//     edge (the "only negation right at the variable" case)
//   * positive pure  iff reachEven and not reachOdd
//   * negative pure  iff reachOdd  and not reachEven
// Cost: O(|phi| + |V|), as stated in the paper.
#include "src/aig/aig.hpp"

namespace hqs {

UnitPureInfo Aig::detectUnitPure(AigEdge root) const
{
    UnitPureInfo info;
    if (isConstant(root)) return info;

    const std::uint32_t rootIdx = root.nodeIndex();
    std::vector<std::uint8_t> reachEven(rootIdx + 1, 0);
    std::vector<std::uint8_t> reachOdd(rootIdx + 1, 0);
    std::vector<std::uint8_t> clean(rootIdx + 1, 0);
    std::vector<std::uint8_t> negUnit(rootIdx + 1, 0);

    if (root.complemented()) {
        reachOdd[rootIdx] = 1;
        // phi = ~v: assigning v = 1 falsifies phi, so v is negative unit.
        if (nodes_[rootIdx].extVar != kNoVar) negUnit[rootIdx] = 1;
    } else {
        reachEven[rootIdx] = 1;
        clean[rootIdx] = 1;
    }

    for (std::uint32_t idx = rootIdx; idx > 0; --idx) {
        if (!reachEven[idx] && !reachOdd[idx]) continue; // outside the cone
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            const Var v = n.extVar;
            if (clean[idx]) info.posUnit.push_back(v);
            if (negUnit[idx]) info.negUnit.push_back(v);
            if (reachEven[idx] && !reachOdd[idx]) info.posPure.push_back(v);
            if (reachOdd[idx] && !reachEven[idx]) info.negPure.push_back(v);
            continue;
        }
        for (const AigEdge f : {n.fanin0, n.fanin1}) {
            const std::uint32_t child = f.nodeIndex();
            if (child == 0) continue; // constant
            if (f.complemented()) {
                if (reachEven[idx]) reachOdd[child] = 1;
                if (reachOdd[idx]) reachEven[child] = 1;
                if (clean[idx] && nodes_[child].extVar != kNoVar) negUnit[child] = 1;
            } else {
                if (reachEven[idx]) reachEven[child] = 1;
                if (reachOdd[idx]) reachOdd[child] = 1;
                if (clean[idx]) clean[child] = 1;
            }
        }
    }
    return info;
}

} // namespace hqs
