// Substitution, cofactoring, and single-variable quantification on AIGs.
//
// All operations are implemented on top of one iterative parallel
// substitution that rebuilds the cone bottom-up with structural hashing.
// existsVar/forallVar realize ∃v.phi = phi[0/v] | phi[1/v] and
// ∀v.phi = phi[0/v] & phi[1/v], the primitives behind Theorems 1 and 2.
#include <cassert>

#include "src/aig/aig.hpp"

namespace hqs {

AigEdge Aig::substitute(AigEdge root, const std::unordered_map<Var, AigEdge>& map)
{
    if (map.empty() || isConstant(root)) return root;

    // result[idx] = rebuilt (uncomplemented) edge for old node idx.
    const std::size_t oldSize = nodes_.size();
    std::vector<AigEdge> result(oldSize, AigEdge());
    result[0] = constFalse();

    std::vector<std::uint32_t> stack{root.nodeIndex()};
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        if (result[idx].isValid()) {
            stack.pop_back();
            continue;
        }
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            auto it = map.find(n.extVar);
            result[idx] = (it != map.end()) ? it->second : AigEdge(idx, false);
            stack.pop_back();
            continue;
        }
        const std::uint32_t i0 = n.fanin0.nodeIndex();
        const std::uint32_t i1 = n.fanin1.nodeIndex();
        if (!result[i0].isValid()) {
            stack.push_back(i0);
            continue;
        }
        if (!result[i1].isValid()) {
            stack.push_back(i1);
            continue;
        }
        // Note: reading fanins again (n may be dangling after mkAnd grows
        // nodes_), so re-fetch via index.
        const AigEdge f0 = nodes_[idx].fanin0;
        const AigEdge f1 = nodes_[idx].fanin1;
        const AigEdge a = result[i0] ^ f0.complemented();
        const AigEdge b = result[i1] ^ f1.complemented();
        result[idx] = mkAnd(a, b);
        // mkAnd may complement-normalize: result[] stores the full edge for
        // the *uncomplemented* old node, so no adjustment needed here.
        stack.pop_back();
    }
    return result[root.nodeIndex()] ^ root.complemented();
}

AigEdge Aig::cofactor(AigEdge root, Var v, bool value)
{
    if (!hasVariable(v)) return root;
    return substitute(root, {{v, value ? constTrue() : constFalse()}});
}

AigEdge Aig::compose(AigEdge root, Var v, AigEdge g)
{
    if (!hasVariable(v)) return root;
    return substitute(root, {{v, g}});
}

AigEdge Aig::existsVar(AigEdge root, Var v)
{
    return mkOr(cofactor(root, v, false), cofactor(root, v, true));
}

AigEdge Aig::forallVar(AigEdge root, Var v)
{
    return mkAnd(cofactor(root, v, false), cofactor(root, v, true));
}

} // namespace hqs
