// Substitution, cofactoring, and single-variable quantification on AIGs.
//
// All operations are implemented on top of one iterative parallel
// substitution that rebuilds the cone bottom-up with structural hashing.
// Per-call memoization lives in the manager's generation-stamped
// TraversalCache (no heap allocation on the hot path); single-variable
// substitutions are additionally memoized per *node* in the lossy
// operation cache, which persists across calls so later cofactors of
// overlapping cones skip shared subgraphs entirely.
// existsVar/forallVar realize ∃v.phi = phi[0/v] | phi[1/v] and
// ∀v.phi = phi[0/v] & phi[1/v], the primitives behind Theorems 1 and 2.
#include <cassert>

#include "src/aig/aig.hpp"

namespace hqs {

namespace {
constexpr std::size_t kOpCacheSize = 1u << 14; // entries; lossy direct-mapped
}

bool Aig::opLookup(std::uint32_t idx, Var v, std::uint32_t gCode, std::uint32_t* resCode)
{
    if (opCache_.empty()) return false;
    const std::uint64_t key = (static_cast<std::uint64_t>(idx) << 32) | gCode;
    const OpEntry& e =
        opCache_[static_cast<std::size_t>(opHash(idx, v, gCode)) & (opCache_.size() - 1)];
    if (e.key == key && e.var == v) {
        *resCode = e.res;
        ++stats_.opCacheHits;
        return true;
    }
    ++stats_.opCacheMisses;
    return false;
}

void Aig::opInsert(std::uint32_t idx, Var v, std::uint32_t gCode, std::uint32_t resCode)
{
    if (opCache_.empty()) opCache_.resize(kOpCacheSize);
    OpEntry& e =
        opCache_[static_cast<std::size_t>(opHash(idx, v, gCode)) & (opCache_.size() - 1)];
    e.key = (static_cast<std::uint64_t>(idx) << 32) | gCode;
    e.var = v;
    e.res = resCode;
}

/// Core bottom-up rebuild shared by every substitution flavour.
/// @p lookup is called for input nodes as lookup(Var, AigEdge* out) and
/// returns true when the variable is mapped.  Results are memoized per old
/// node index in trav_ (slot = rebuilt edge code for the uncomplemented
/// node function).
template <class Lookup>
AigEdge Aig::substituteImpl(AigEdge root, Lookup&& lookup)
{
    // trav_ is sized to the pool at entry; mkAnd may append nodes beyond
    // that, but only old indices (< oldSize) are ever queried.
    trav_.reset(nodes_.size());
    trav_.set(0, constFalse().code());

    stack_.clear();
    stack_.push_back(root.nodeIndex());
    while (!stack_.empty()) {
        const std::uint32_t idx = stack_.back();
        if (trav_.has(idx)) {
            stack_.pop_back();
            continue;
        }
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            AigEdge mapped;
            trav_.set(idx, lookup(n.extVar, &mapped) ? mapped.code()
                                                     : AigEdge(idx, false).code());
            stack_.pop_back();
            continue;
        }
        const std::uint32_t i0 = n.fanin0.nodeIndex();
        const std::uint32_t i1 = n.fanin1.nodeIndex();
        if (!trav_.has(i0)) {
            stack_.push_back(i0);
            continue;
        }
        if (!trav_.has(i1)) {
            stack_.push_back(i1);
            continue;
        }
        // Note: reading fanins again (n may be dangling after mkAnd grows
        // nodes_), so re-fetch via index.
        const AigEdge f0 = nodes_[idx].fanin0;
        const AigEdge f1 = nodes_[idx].fanin1;
        const AigEdge a =
            AigEdge::fromCode(static_cast<std::uint32_t>(trav_.get(i0))) ^ f0.complemented();
        const AigEdge b =
            AigEdge::fromCode(static_cast<std::uint32_t>(trav_.get(i1))) ^ f1.complemented();
        trav_.set(idx, mkAnd(a, b).code());
        stack_.pop_back();
    }
    return AigEdge::fromCode(static_cast<std::uint32_t>(trav_.get(root.nodeIndex()))) ^
           root.complemented();
}

/// Single-variable substitution phi[g/v] with per-node operation caching:
/// the computed table persists across calls, so repeated cofactors over an
/// evolving matrix reuse every shared subcone.
AigEdge Aig::substituteOne(AigEdge root, Var v, AigEdge g)
{
    if (isConstant(root)) return root;
    const std::uint32_t gCode = g.code();

    trav_.reset(nodes_.size());
    trav_.set(0, constFalse().code());

    stack_.clear();
    stack_.push_back(root.nodeIndex());
    while (!stack_.empty()) {
        const std::uint32_t idx = stack_.back();
        if (trav_.has(idx)) {
            stack_.pop_back();
            continue;
        }
        const Node& n = nodes_[idx];
        if (n.extVar != kNoVar) {
            trav_.set(idx, n.extVar == v ? gCode : AigEdge(idx, false).code());
            stack_.pop_back();
            continue;
        }
        std::uint32_t cached = 0;
        if (opLookup(idx, v, gCode, &cached)) {
            trav_.set(idx, cached);
            stack_.pop_back();
            continue;
        }
        const std::uint32_t i0 = n.fanin0.nodeIndex();
        const std::uint32_t i1 = n.fanin1.nodeIndex();
        if (!trav_.has(i0)) {
            stack_.push_back(i0);
            continue;
        }
        if (!trav_.has(i1)) {
            stack_.push_back(i1);
            continue;
        }
        const AigEdge f0 = nodes_[idx].fanin0; // re-fetch: mkAnd may grow nodes_
        const AigEdge f1 = nodes_[idx].fanin1;
        const AigEdge a =
            AigEdge::fromCode(static_cast<std::uint32_t>(trav_.get(i0))) ^ f0.complemented();
        const AigEdge b =
            AigEdge::fromCode(static_cast<std::uint32_t>(trav_.get(i1))) ^ f1.complemented();
        const AigEdge res = mkAnd(a, b);
        trav_.set(idx, res.code());
        opInsert(idx, v, gCode, res.code());
        stack_.pop_back();
    }
    return AigEdge::fromCode(static_cast<std::uint32_t>(trav_.get(root.nodeIndex()))) ^
           root.complemented();
}

AigEdge Aig::substitute(AigEdge root, const Substitution& sub)
{
    if (sub.empty() || isConstant(root)) return root;
    if (sub.size() == 1) {
        const Var v = sub.domain().front();
        return hasVariable(v) ? substituteOne(root, v, sub.image(v)) : root;
    }
    return substituteImpl(root, [&sub](Var v, AigEdge* out) {
        if (!sub.maps(v)) return false;
        *out = sub.image(v);
        return true;
    });
}

AigEdge Aig::substitute(AigEdge root, const std::unordered_map<Var, AigEdge>& map)
{
    // Deprecated compatibility shim: costs one Substitution build per call.
    if (map.empty() || isConstant(root)) return root;
    Substitution sub;
    for (const auto& [v, g] : map) sub.set(v, g);
    return substitute(root, sub);
}

AigEdge Aig::cofactor(AigEdge root, Var v, bool value)
{
    if (!hasVariable(v)) return root;
    return substituteOne(root, v, value ? constTrue() : constFalse());
}

AigEdge Aig::compose(AigEdge root, Var v, AigEdge g)
{
    if (!hasVariable(v)) return root;
    return substituteOne(root, v, g);
}

AigEdge Aig::existsVar(AigEdge root, Var v)
{
    return mkOr(cofactor(root, v, false), cofactor(root, v, true));
}

AigEdge Aig::forallVar(AigEdge root, Var v)
{
    return mkAnd(cofactor(root, v, false), cofactor(root, v, true));
}

} // namespace hqs
