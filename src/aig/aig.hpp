// And-Inverter Graphs: structurally hashed Boolean function representation.
//
// This is our stand-in for the `aigpp` library the paper builds on [18].
// An Aig manager owns a pool of nodes; each node is either the constant,
// an input (labelled with an external variable), or a two-input AND.
// Negation is free: edges carry a complement bit.  mkAnd performs constant
// folding and structural hashing, so structurally identical functions share
// nodes (full functional reduction — FRAIGing — is in fraig.hpp).
//
// On top of the core the manager provides the operations HQS needs:
// cofactor/compose/parallel substitution (quantify.cpp), single-variable
// existential and universal quantification, support computation, evaluation
// and 64-way parallel simulation, mark-and-rebuild garbage collection, the
// Theorem-6 syntactic unit/pure detection (unit_pure.hpp), and a CNF bridge
// (cnf_bridge.hpp).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "src/base/literal.hpp"

namespace hqs {

/// A (possibly complemented) reference to an AIG node.
class AigEdge {
public:
    constexpr AigEdge() : code_(kInvalidCode) {}
    constexpr AigEdge(std::uint32_t nodeIndex, bool complemented)
        : code_((nodeIndex << 1) | (complemented ? 1u : 0u))
    {
    }

    constexpr std::uint32_t nodeIndex() const { return code_ >> 1; }
    constexpr bool complemented() const { return (code_ & 1u) != 0; }
    constexpr std::uint32_t code() const { return code_; }
    static constexpr AigEdge fromCode(std::uint32_t code)
    {
        AigEdge e;
        e.code_ = code;
        return e;
    }

    constexpr bool isValid() const { return code_ != kInvalidCode; }

    constexpr AigEdge operator~() const { return fromCode(code_ ^ 1u); }
    constexpr AigEdge operator^(bool flip) const { return fromCode(code_ ^ (flip ? 1u : 0u)); }

    constexpr bool operator==(const AigEdge&) const = default;
    constexpr bool operator<(const AigEdge& o) const { return code_ < o.code_; }

private:
    static constexpr std::uint32_t kInvalidCode = static_cast<std::uint32_t>(-1);
    std::uint32_t code_;
};

/// Per-variable unit/pure classification from the Theorem-6 AIG traversal.
/// A variable can be unit and pure at the same time; variables outside the
/// cone's support are reported in `unused`.
struct UnitPureInfo {
    std::vector<Var> posUnit;
    std::vector<Var> negUnit;
    std::vector<Var> posPure;
    std::vector<Var> negPure;
};

class SatSolver; // cnf_bridge / fraig use the SAT solver

/// AIG manager: owns the node pool and the structural-hashing table.
class Aig {
public:
    Aig();

    // ----- leaves ---------------------------------------------------------
    AigEdge constFalse() const { return AigEdge(0, false); }
    AigEdge constTrue() const { return AigEdge(0, true); }

    /// The input edge for external variable @p v (created on first use).
    AigEdge variable(Var v);
    bool hasVariable(Var v) const;
    /// Input edge for @p v without creating it (precondition:
    /// hasVariable(v)).
    AigEdge existingVariable(Var v) const { return AigEdge(inputOfVar_.at(v), false); }

    bool isConstant(AigEdge e) const { return e.nodeIndex() == 0; }
    /// Value of a constant edge (precondition: isConstant(e)).
    bool constantValue(AigEdge e) const { return e.complemented(); }
    bool isInput(AigEdge e) const;
    /// External variable of an input edge (precondition: isInput(e)).
    Var inputVariable(AigEdge e) const;

    // ----- structure ------------------------------------------------------
    bool isAnd(AigEdge e) const;
    AigEdge fanin0(AigEdge e) const;
    AigEdge fanin1(AigEdge e) const;

    // ----- Boolean operations ----------------------------------------------
    AigEdge mkAnd(AigEdge a, AigEdge b);
    AigEdge mkOr(AigEdge a, AigEdge b) { return ~mkAnd(~a, ~b); }
    AigEdge mkXor(AigEdge a, AigEdge b);
    AigEdge mkEquiv(AigEdge a, AigEdge b) { return ~mkXor(a, b); }
    AigEdge mkImplies(AigEdge a, AigEdge b) { return mkOr(~a, b); }
    AigEdge mkIte(AigEdge c, AigEdge t, AigEdge e);
    AigEdge mkAndN(const std::vector<AigEdge>& es);
    AigEdge mkOrN(const std::vector<AigEdge>& es);

    // ----- substitution and quantification (quantify.cpp) -------------------
    /// phi[value/v].
    AigEdge cofactor(AigEdge root, Var v, bool value);
    /// phi[g/v] (single composition).
    AigEdge compose(AigEdge root, Var v, AigEdge g);
    /// Simultaneous substitution var -> function for every map entry.
    AigEdge substitute(AigEdge root, const std::unordered_map<Var, AigEdge>& map);
    /// ∃v. phi  =  phi[0/v] | phi[1/v].
    AigEdge existsVar(AigEdge root, Var v);
    /// ∀v. phi  =  phi[0/v] & phi[1/v].
    AigEdge forallVar(AigEdge root, Var v);

    // ----- inspection -------------------------------------------------------
    /// External variables the cone of @p root structurally depends on
    /// (sorted ascending).
    std::vector<Var> support(AigEdge root) const;
    /// Number of AND nodes in the cone of @p root.
    std::size_t coneSize(AigEdge root) const;
    /// Total nodes currently allocated in the manager (including garbage).
    std::size_t numNodes() const { return nodes_.size(); }

    /// Evaluate under an assignment of external variables (indexed by Var;
    /// variables beyond the vector are taken as false).
    bool evaluate(AigEdge root, const std::vector<bool>& assignment) const;

    /// 64-way parallel simulation: @p inputWords maps each external variable
    /// to a 64-bit pattern word; returns the output word of @p root.
    std::uint64_t simulate(AigEdge root, const std::unordered_map<Var, std::uint64_t>& inputWords) const;

    // ----- unit/pure detection (unit_pure.cpp) -----------------------------
    /// Syntactic unit/pure classification of Theorem 6, O(cone + vars).
    UnitPureInfo detectUnitPure(AigEdge root) const;

    // ----- garbage collection ----------------------------------------------
    /// Drop every node not reachable from @p roots, rebuilding the manager.
    /// The edges in @p roots are updated in place.
    void garbageCollect(std::vector<AigEdge*> roots);

private:
    struct Node {
        AigEdge fanin0; // invalid for const/input nodes
        AigEdge fanin1;
        Var extVar = kNoVar; // set for input nodes only
    };

    AigEdge mkAndRaw(AigEdge a, AigEdge b);

    static std::uint64_t andKey(AigEdge a, AigEdge b)
    {
        return (static_cast<std::uint64_t>(a.code()) << 32) | b.code();
    }

    const Node& node(AigEdge e) const { return nodes_[e.nodeIndex()]; }

    std::vector<Node> nodes_;
    std::unordered_map<std::uint64_t, std::uint32_t> strash_; // (f0,f1) -> node
    std::unordered_map<Var, std::uint32_t> inputOfVar_;

    friend class AigCnfBridge;
};

std::ostream& operator<<(std::ostream& os, AigEdge e);

} // namespace hqs
