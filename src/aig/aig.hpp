// And-Inverter Graphs: structurally hashed Boolean function representation.
//
// This is our stand-in for the `aigpp` library the paper builds on [18].
// An Aig manager owns a pool of nodes; each node is either the constant,
// an input (labelled with an external variable), or a two-input AND.
// Negation is free: edges carry a complement bit.  mkAnd performs constant
// folding and structural hashing, so structurally identical functions share
// nodes (full functional reduction — FRAIGing — is in fraig.hpp).
//
// The kernel follows the classic AIG/BDD-package disciplines (ABC's AIG
// manager; CUDD's unique/computed tables):
//   * the strash is a power-of-two open-addressing table in one flat
//     vector (linear probing, value = node index + 1, 0 = empty);
//   * traversals (substitute, cofactor, support, simulate, evaluate, the
//     Theorem-6 unit/pure walk) run on a manager-owned, generation-stamped
//     TraversalCache — bumping the generation invalidates in O(1), so the
//     hot paths do no per-call heap allocation;
//   * single-variable compose/cofactor results are memoized per *node* in
//     a lossy direct-mapped operation cache that persists across calls
//     (and across eliminations within one solver run) and is remapped —
//     not discarded — by garbage collection;
//   * garbageCollect is a mark-and-compact pass: callers register their
//     live roots, dead cones are reclaimed, the strash is rehashed, and
//     the registered AigEdge handles are rewired through a remap table.
//
// On top of the core the manager provides the operations HQS needs:
// cofactor/compose/parallel substitution (quantify.cpp), single-variable
// existential and universal quantification, support computation, evaluation
// and 64-way parallel simulation, the Theorem-6 syntactic unit/pure
// detection (unit_pure.hpp), and a CNF bridge (cnf_bridge.hpp).
//
// Thread-safety: a manager is single-threaded, except for cofactorInto,
// which is read-only on the source manager and uses only local scratch —
// several threads may cofactor out of one frozen manager into private
// destination managers concurrently (the Theorem-1 parallel path).
#pragma once

#include <algorithm>
#include <cstdint>
#include <iosfwd>
#include <unordered_map>
#include <vector>

#include "src/base/literal.hpp"

namespace hqs {

/// A (possibly complemented) reference to an AIG node.
class AigEdge {
public:
    constexpr AigEdge() : code_(kInvalidCode) {}
    constexpr AigEdge(std::uint32_t nodeIndex, bool complemented)
        : code_((nodeIndex << 1) | (complemented ? 1u : 0u))
    {
    }

    constexpr std::uint32_t nodeIndex() const { return code_ >> 1; }
    constexpr bool complemented() const { return (code_ & 1u) != 0; }
    constexpr std::uint32_t code() const { return code_; }
    static constexpr AigEdge fromCode(std::uint32_t code)
    {
        AigEdge e;
        e.code_ = code;
        return e;
    }

    constexpr bool isValid() const { return code_ != kInvalidCode; }

    constexpr AigEdge operator~() const { return fromCode(code_ ^ 1u); }
    constexpr AigEdge operator^(bool flip) const { return fromCode(code_ ^ (flip ? 1u : 0u)); }

    constexpr bool operator==(const AigEdge&) const = default;
    constexpr bool operator<(const AigEdge& o) const { return code_ < o.code_; }

private:
    static constexpr std::uint32_t kInvalidCode = static_cast<std::uint32_t>(-1);
    std::uint32_t code_;
};

/// Per-variable unit/pure classification from the Theorem-6 AIG traversal.
/// A variable can be unit and pure at the same time; variables outside the
/// cone's support are reported in `unused`.
struct UnitPureInfo {
    std::vector<Var> posUnit;
    std::vector<Var> negUnit;
    std::vector<Var> posPure;
    std::vector<Var> negPure;
};

/// Reusable simultaneous-substitution map Var -> AigEdge for
/// Aig::substitute.  Dense and generation-stamped: clear() is O(1) and
/// leaves capacity in place, so one Substitution can be rebuilt every
/// elimination without heap churn.  Obtain a manager-owned scratch instance
/// through Aig::scratchSubstitution(), or hold your own.
class Substitution {
public:
    Substitution() = default;

    /// Map @p v to @p g (overwrites an earlier image of v).
    void set(Var v, AigEdge g)
    {
        if (v >= stamp_.size()) {
            stamp_.resize(v + 1, 0);
            image_.resize(v + 1);
        }
        if (stamp_[v] != gen_) {
            stamp_[v] = gen_;
            domain_.push_back(v);
        }
        image_[v] = g;
    }

    /// Forget every mapping; capacity is retained.
    void clear()
    {
        domain_.clear();
        if (++gen_ == 0) {
            std::fill(stamp_.begin(), stamp_.end(), 0u);
            gen_ = 1;
        }
    }

    bool empty() const { return domain_.empty(); }
    std::size_t size() const { return domain_.size(); }
    bool maps(Var v) const { return v < stamp_.size() && stamp_[v] == gen_; }
    /// Image of @p v (precondition: maps(v)).
    AigEdge image(Var v) const { return image_[v]; }
    /// Mapped variables in insertion order.
    const std::vector<Var>& domain() const { return domain_; }

private:
    std::vector<std::uint32_t> stamp_;
    std::vector<AigEdge> image_;
    std::vector<Var> domain_;
    std::uint32_t gen_ = 1;
};

/// Cumulative kernel instrumentation (monotonic over the manager's life).
/// Mirrored into the obs registry as aig.strash.*, aig.opcache.*, aig.gc.*
/// and the aig.nodes.peak_* gauges by publishKernelStats()/garbageCollect.
struct AigKernelStats {
    std::uint64_t strashProbes = 0;   ///< table slots inspected by mkAnd
    std::uint64_t strashResizes = 0;  ///< doublings of the strash table
    std::uint64_t opCacheHits = 0;    ///< per-node compose/cofactor hits
    std::uint64_t opCacheMisses = 0;  ///< per-node compose/cofactor misses
    std::uint64_t gcRuns = 0;
    std::uint64_t gcReclaimedNodes = 0;
    std::uint64_t peakLiveNodes = 0;  ///< max live nodes seen at a GC mark
    std::uint64_t peakAllocatedNodes = 0; ///< max pool size ever
};

class SatSolver; // cnf_bridge / fraig use the SAT solver

/// AIG manager: owns the node pool, the structural-hashing table, the
/// traversal cache, and the compose/cofactor operation cache.
class Aig {
public:
    Aig();

    // ----- leaves ---------------------------------------------------------
    AigEdge constFalse() const { return AigEdge(0, false); }
    AigEdge constTrue() const { return AigEdge(0, true); }

    /// The input edge for external variable @p v (created on first use).
    AigEdge variable(Var v);
    bool hasVariable(Var v) const;
    /// Input edge for @p v without creating it (precondition:
    /// hasVariable(v)).
    AigEdge existingVariable(Var v) const { return AigEdge(inputOfVar_.at(v), false); }

    bool isConstant(AigEdge e) const { return e.nodeIndex() == 0; }
    /// Value of a constant edge (precondition: isConstant(e)).
    bool constantValue(AigEdge e) const { return e.complemented(); }
    bool isInput(AigEdge e) const;
    /// External variable of an input edge (precondition: isInput(e)).
    Var inputVariable(AigEdge e) const;

    // ----- structure ------------------------------------------------------
    bool isAnd(AigEdge e) const;
    AigEdge fanin0(AigEdge e) const;
    AigEdge fanin1(AigEdge e) const;

    // ----- Boolean operations ----------------------------------------------
    AigEdge mkAnd(AigEdge a, AigEdge b);
    AigEdge mkOr(AigEdge a, AigEdge b) { return ~mkAnd(~a, ~b); }
    AigEdge mkXor(AigEdge a, AigEdge b);
    AigEdge mkEquiv(AigEdge a, AigEdge b) { return ~mkXor(a, b); }
    AigEdge mkImplies(AigEdge a, AigEdge b) { return mkOr(~a, b); }
    AigEdge mkIte(AigEdge c, AigEdge t, AigEdge e);
    AigEdge mkAndN(const std::vector<AigEdge>& es);
    AigEdge mkOrN(const std::vector<AigEdge>& es);

    // ----- substitution and quantification (quantify.cpp) -------------------
    /// phi[value/v].  Memoized per node in the operation cache.
    AigEdge cofactor(AigEdge root, Var v, bool value);
    /// phi[g/v] (single composition).  Memoized per node in the operation
    /// cache.
    AigEdge compose(AigEdge root, Var v, AigEdge g);
    /// Simultaneous substitution var -> function for every entry of @p sub.
    AigEdge substitute(AigEdge root, const Substitution& sub);
    /// Deprecated map-based overload; builds a Substitution and forwards.
    [[deprecated("pass a hqs::Substitution (see README migration note)")]]
    AigEdge substitute(AigEdge root, const std::unordered_map<Var, AigEdge>& map);
    /// ∃v. phi  =  phi[0/v] | phi[1/v].
    AigEdge existsVar(AigEdge root, Var v);
    /// ∀v. phi  =  phi[0/v] & phi[1/v].
    AigEdge forallVar(AigEdge root, Var v);

    /// Manager-owned scratch Substitution, cleared on every call.  The
    /// returned reference stays valid until the manager dies; do not nest
    /// two scratchSubstitution() builds.
    Substitution& scratchSubstitution()
    {
        scratchSub_.clear();
        return scratchSub_;
    }

    // ----- cross-manager rebuilds (parallel Theorem-1 path) -----------------
    /// Rebuild the cone of @p root inside @p dst with @p v fixed to
    /// @p value; inputs carry over by external variable.  Read-only on
    /// *this* and allocation-local: several threads may call it on one
    /// frozen source manager concurrently, each with a private @p dst.
    AigEdge cofactorInto(Aig& dst, AigEdge root, Var v, bool value) const;
    /// Copy the cone of @p root from @p src into this manager (structural
    /// hashing deduplicates against existing nodes).
    AigEdge importCone(const Aig& src, AigEdge root);

    // ----- inspection -------------------------------------------------------
    /// External variables the cone of @p root structurally depends on
    /// (sorted ascending).
    std::vector<Var> support(AigEdge root) const;
    /// Number of AND nodes in the cone of @p root.
    std::size_t coneSize(AigEdge root) const;
    /// Total nodes currently allocated in the manager (including garbage).
    std::size_t numNodes() const { return nodes_.size(); }

    /// Evaluate under an assignment of external variables (indexed by Var;
    /// variables beyond the vector are taken as false).
    bool evaluate(AigEdge root, const std::vector<bool>& assignment) const;

    /// 64-way parallel simulation: @p inputWords maps each external variable
    /// to a 64-bit pattern word; returns the output word of @p root.
    std::uint64_t simulate(AigEdge root, const std::unordered_map<Var, std::uint64_t>& inputWords) const;

    // ----- unit/pure detection (unit_pure.cpp) -----------------------------
    /// Syntactic unit/pure classification of Theorem 6, O(cone + vars).
    UnitPureInfo detectUnitPure(AigEdge root) const;

    // ----- garbage collection ----------------------------------------------
    /// Drop every node not reachable from @p roots, rebuilding the node
    /// pool, rehashing the strash, and remapping surviving operation-cache
    /// entries.  The edges in @p roots are updated in place.
    void garbageCollect(std::vector<AigEdge*> roots);

    // ----- instrumentation --------------------------------------------------
    const AigKernelStats& kernelStats() const { return stats_; }
    /// Push the deltas since the last publish into the obs registry
    /// (aig.strash.probes, aig.strash.resizes, aig.opcache.hits,
    /// aig.opcache.misses, aig.gc.runs, aig.gc.reclaimed and the
    /// aig.nodes.peak_live / aig.nodes.peak_alloc gauges).  Called by
    /// garbageCollect; call once more when a solve finishes.
    void publishKernelStats();

private:
    struct Node {
        AigEdge fanin0; // invalid for const/input nodes
        AigEdge fanin1;
        Var extVar = kNoVar; // set for input nodes only
    };

    /// Generation-stamped dense per-node scratch: reset() bumps the
    /// generation (O(1)) instead of clearing, and sizes the arrays to the
    /// current pool.  Slots hold whatever the traversal needs (an edge
    /// code, a simulation word, mark bits).  Not reentrant: one traversal
    /// at a time (traversals never call other traversals).
    struct TraversalCache {
        std::vector<std::uint32_t> stamp;
        std::vector<std::uint64_t> slot;
        std::uint32_t gen = 0;

        void reset(std::size_t n)
        {
            if (stamp.size() < n) {
                stamp.resize(n, 0u);
                slot.resize(n);
            }
            if (++gen == 0) {
                std::fill(stamp.begin(), stamp.end(), 0u);
                gen = 1;
            }
        }
        bool has(std::uint32_t i) const { return stamp[i] == gen; }
        std::uint64_t get(std::uint32_t i) const { return slot[i]; }
        void set(std::uint32_t i, std::uint64_t v)
        {
            stamp[i] = gen;
            slot[i] = v;
        }
        void orBits(std::uint32_t i, std::uint64_t bits)
        {
            if (stamp[i] == gen) {
                slot[i] |= bits;
            } else {
                stamp[i] = gen;
                slot[i] = bits;
            }
        }
    };

    /// One lossy direct-mapped computed-table entry for single-variable
    /// substitution: node `idx` with `v := g` rebuilt as edge `res`.
    struct OpEntry {
        std::uint64_t key = kOpEmptyKey; // (node index << 32) | g.code
        std::uint32_t var = 0;
        std::uint32_t res = 0;
    };
    static constexpr std::uint64_t kOpEmptyKey = ~0ull;

    AigEdge mkAndRaw(AigEdge a, AigEdge b);

    // strash helpers (aig.cpp)
    void strashGrow();
    void strashInsertNew(std::uint32_t idx); ///< insert without duplicate check
    static std::uint64_t strashHash(std::uint32_t aCode, std::uint32_t bCode);

    // op-cache helpers (quantify.cpp)
    static std::uint64_t opHash(std::uint32_t nodeIdx, Var v, std::uint32_t gCode);
    bool opLookup(std::uint32_t idx, Var v, std::uint32_t gCode, std::uint32_t* resCode);
    void opInsert(std::uint32_t idx, Var v, std::uint32_t gCode, std::uint32_t resCode);
    AigEdge substituteOne(AigEdge root, Var v, AigEdge g);
    template <class Lookup> AigEdge substituteImpl(AigEdge root, Lookup&& lookup);

    const Node& node(AigEdge e) const { return nodes_[e.nodeIndex()]; }

    std::vector<Node> nodes_;
    std::vector<std::uint32_t> strash_; ///< pow2 open addressing; node index + 1; 0 empty
    std::size_t strashCount_ = 0;       ///< AND nodes stored in strash_
    std::unordered_map<Var, std::uint32_t> inputOfVar_;

    mutable TraversalCache trav_;
    mutable std::vector<std::uint32_t> stack_; ///< reused DFS stack (same non-reentrancy rule)
    std::vector<OpEntry> opCache_;             ///< lazily sized to kOpCacheSize
    Substitution scratchSub_;

    AigKernelStats stats_;
    AigKernelStats published_; ///< stats_ snapshot at the last obs publish

    friend class AigCnfBridge;
};

std::ostream& operator<<(std::ostream& os, AigEdge e);

} // namespace hqs
