// FRAIG-style functional reduction by SAT sweeping [24].
//
// The paper performs operations on AIGs "followed by a conversion to FRAIGs
// from time to time" (Section II-C).  fraigReduce rebuilds the cone of a
// root so that no two remaining nodes compute the same (or complementary)
// function: candidate equivalences are proposed by 64-way random simulation
// signatures and confirmed by incremental SAT equivalence checks; confirmed
// nodes are merged into their representative.
#pragma once

#include <cstdint>

#include "src/aig/aig.hpp"
#include "src/base/timer.hpp"

namespace hqs {

struct FraigOptions {
    /// 64-bit simulation words per node (more words = fewer spurious
    /// candidates, more memory).
    unsigned simWords = 4;
    /// Wall-clock budget per SAT equivalence query; timed-out queries leave
    /// the node unmerged (sound, just less reduction).
    double satBudgetSeconds = 0.01;
    /// Cap on SAT equivalence queries per sweep (0 = unlimited).  Keeps a
    /// sweep over a merge-rich cone from dominating the solve time.
    std::size_t maxQueries = 1000;
    /// Global deadline: once expired, the sweep stops issuing SAT queries
    /// and finishes as a plain structural rebuild (still sound).
    Deadline deadline = Deadline::unlimited();
    std::uint64_t seed = 0x5eedULL;
};

struct FraigStats {
    std::size_t candidates = 0;  ///< SAT equivalence queries issued
    std::size_t merged = 0;      ///< nodes merged into a representative
    std::size_t refuted = 0;     ///< candidate pairs refuted by SAT
    std::size_t timedOut = 0;    ///< queries abandoned on budget
};

/// Functionally reduce the cone of @p root; returns the (logically
/// equivalent) new root.
AigEdge fraigReduce(Aig& aig, AigEdge root, const FraigOptions& opts = {},
                    FraigStats* stats = nullptr);

} // namespace hqs
