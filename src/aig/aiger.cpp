#include "src/aig/aiger.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>
#include <unordered_map>

namespace hqs {
namespace {

/// Collect the AND nodes of the cones of @p outputs in ascending node-index
/// order (a topological order, fanins first).
std::vector<std::uint32_t> coneAnds(const Aig& aig, const std::vector<AigEdge>& outputs)
{
    std::vector<std::uint32_t> nodes;
    std::vector<bool> seen;
    std::vector<std::uint32_t> stack;
    for (AigEdge e : outputs) stack.push_back(e.nodeIndex());
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        if (idx >= seen.size()) seen.resize(idx + 1, false);
        if (seen[idx]) continue;
        seen[idx] = true;
        const AigEdge e(idx, false);
        if (aig.isAnd(e)) {
            nodes.push_back(idx);
            stack.push_back(aig.fanin0(e).nodeIndex());
            stack.push_back(aig.fanin1(e).nodeIndex());
        }
    }
    std::sort(nodes.begin(), nodes.end());
    return nodes;
}

} // namespace

void writeAiger(std::ostream& os, const Aig& aig, const std::vector<AigEdge>& outputs)
{
    // Inputs: union of the supports, ascending external-variable order.
    std::vector<Var> inputVars;
    for (AigEdge e : outputs) {
        const std::vector<Var> s = aig.support(e);
        inputVars.insert(inputVars.end(), s.begin(), s.end());
    }
    std::sort(inputVars.begin(), inputVars.end());
    inputVars.erase(std::unique(inputVars.begin(), inputVars.end()), inputVars.end());

    const std::vector<std::uint32_t> ands = coneAnds(aig, outputs);

    // AIGER variable assignment: inputs 1..I, ANDs I+1..I+A.
    std::unordered_map<std::uint32_t, unsigned> aigerVarOfNode;
    unsigned next = 1;
    for (Var v : inputVars) {
        aigerVarOfNode.emplace(aig.existingVariable(v).nodeIndex(), next++);
    }
    for (std::uint32_t idx : ands) aigerVarOfNode.emplace(idx, next++);

    auto literalOf = [&](AigEdge e) -> unsigned {
        if (aig.isConstant(e)) return e.complemented() ? 1u : 0u;
        return 2 * aigerVarOfNode.at(e.nodeIndex()) + (e.complemented() ? 1u : 0u);
    };

    const unsigned I = static_cast<unsigned>(inputVars.size());
    const unsigned A = static_cast<unsigned>(ands.size());
    os << "aag " << (I + A) << ' ' << I << " 0 " << outputs.size() << ' ' << A << '\n';
    for (unsigned i = 1; i <= I; ++i) os << 2 * i << '\n';
    for (AigEdge e : outputs) os << literalOf(e) << '\n';
    for (std::uint32_t idx : ands) {
        const AigEdge e(idx, false);
        os << literalOf(e) << ' ' << literalOf(aig.fanin0(e)) << ' '
           << literalOf(aig.fanin1(e)) << '\n';
    }
    // Symbol table: original external variable names for the inputs.
    for (unsigned i = 0; i < I; ++i) os << 'i' << i << " v" << inputVars[i] << '\n';
}

std::string toAigerString(const Aig& aig, const std::vector<AigEdge>& outputs)
{
    std::ostringstream os;
    writeAiger(os, aig, outputs);
    return os.str();
}

AigerFile readAiger(std::istream& is, Aig& aig)
{
    std::string magic;
    unsigned M = 0, I = 0, L = 0, O = 0, A = 0;
    if (!(is >> magic >> M >> I >> L >> O >> A)) throw ParseError("bad aag header");
    if (magic != "aag") throw ParseError("not an ASCII aiger (aag) file");
    if (L != 0) throw ParseError("sequential (latch) AIGER files are not supported");
    if (I + A > M) throw ParseError("aag header: M < I + A");

    auto readLit = [&]() {
        long v = -1;
        if (!(is >> v) || v < 0) throw ParseError("bad aag literal");
        if (static_cast<unsigned>(v) > 2 * M + 1) throw ParseError("aag literal out of range");
        return static_cast<unsigned>(v);
    };

    AigerFile out;
    std::map<unsigned, AigEdge> edgeOfAigerVar; // var index -> uncomplemented edge
    for (unsigned i = 0; i < I; ++i) {
        const unsigned lit = readLit();
        if (lit == 0 || lit % 2 != 0) throw ParseError("input literal must be even, nonzero");
        if (edgeOfAigerVar.contains(lit / 2)) throw ParseError("duplicate aag input literal");
        const Var v = static_cast<Var>(i);
        edgeOfAigerVar.emplace(lit / 2, aig.variable(v));
        out.inputs.push_back(v);
    }
    std::vector<unsigned> outputLits;
    for (unsigned i = 0; i < O; ++i) outputLits.push_back(readLit());

    auto resolve = [&](unsigned lit) {
        if (lit == 0) return aig.constFalse();
        if (lit == 1) return aig.constTrue();
        auto it = edgeOfAigerVar.find(lit / 2);
        if (it == edgeOfAigerVar.end()) {
            throw ParseError("aag literal " + std::to_string(lit) +
                             " used before definition (file must be topologically ordered)");
        }
        return it->second ^ (lit % 2 != 0);
    };

    for (unsigned i = 0; i < A; ++i) {
        const unsigned lhs = readLit();
        if (lhs % 2 != 0 || lhs / 2 <= I) throw ParseError("bad aag AND definition lhs");
        const unsigned rhs0 = readLit();
        const unsigned rhs1 = readLit();
        if (edgeOfAigerVar.contains(lhs / 2)) throw ParseError("duplicate aag definition");
        edgeOfAigerVar.emplace(lhs / 2, aig.mkAnd(resolve(rhs0), resolve(rhs1)));
    }
    for (unsigned lit : outputLits) out.outputs.push_back(resolve(lit));
    return out;
}

AigerFile readAigerString(const std::string& text, Aig& aig)
{
    std::istringstream is(text);
    return readAiger(is, aig);
}

} // namespace hqs
