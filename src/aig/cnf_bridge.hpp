// Bridges between CNF and AIG representations.
//
// * buildFromCnf / buildFromClause: construct an AIG for a CNF matrix
//   (conjunction of clause disjunctions) — the step "create an AIG
//   representation from the CNF" in the paper's algorithmic flow (Fig. 3).
// * AigCnfBridge: incremental Tseitin encoding of AIG cones into a SAT
//   solver, used by FRAIG SAT-sweeping and by semantic checks in tests.
#pragma once

#include <unordered_map>

#include "src/aig/aig.hpp"
#include "src/cnf/cnf.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {

/// AIG of a single clause (disjunction of its literals).
AigEdge buildFromClause(Aig& aig, const Clause& clause);

/// AIG of a CNF matrix (conjunction of clauses).  External AIG variables
/// coincide with the CNF variables.
AigEdge buildFromCnf(Aig& aig, const Cnf& cnf);

/// Incrementally Tseitin-encodes AIG cones into a SatSolver.  Every AIG node
/// gets at most one SAT variable; repeated litFor calls share the encoding,
/// enabling cheap incremental equivalence queries under assumptions.
class AigCnfBridge {
public:
    AigCnfBridge(const Aig& aig, SatSolver& sat) : aig_(aig), sat_(sat) {}

    /// SAT literal equal to the function of @p e; encodes the cone on first
    /// use.
    Lit litFor(AigEdge e);

    /// SAT variable backing external AIG variable @p v (created on demand).
    Var satVarForInput(Var v);

private:
    Var varForNode(std::uint32_t nodeIndex);

    const Aig& aig_;
    SatSolver& sat_;
    std::unordered_map<std::uint32_t, Var> nodeVar_; // AIG node -> SAT var
    std::unordered_map<Var, Var> inputVar_;          // ext var -> SAT var
};

} // namespace hqs
