#include "src/aig/fraig.hpp"

#include <cassert>

#include "src/aig/cnf_bridge.hpp"
#include "src/base/fault.hpp"
#include "src/base/rng.hpp"
#include "src/obs/obs.hpp"
#include "src/base/timer.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {
namespace {

/// Deterministic simulation pattern for (variable, word index).
std::uint64_t inputPattern(Var v, unsigned word, std::uint64_t seed)
{
    std::uint64_t z = seed ^ (static_cast<std::uint64_t>(v) * 0x9e3779b97f4a7c15ull) ^
                      (static_cast<std::uint64_t>(word + 1) * 0xda942042e4dd58b5ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/// Lazily memoized simulation signatures for nodes of @p aig.
class Signatures {
public:
    Signatures(const Aig& aig, unsigned words, std::uint64_t seed)
        : aig_(aig), words_(words), seed_(seed)
    {
    }

    /// Signature of an edge (complement applied).
    std::vector<std::uint64_t> ofEdge(AigEdge e)
    {
        std::vector<std::uint64_t> s = ofNode(e.nodeIndex());
        if (e.complemented()) {
            for (auto& w : s) w = ~w;
        }
        return s;
    }

private:
    const std::vector<std::uint64_t>& ofNode(std::uint32_t idx)
    {
        auto hit = memo_.find(idx);
        if (hit != memo_.end()) return hit->second;

        std::vector<std::uint32_t> stack{idx};
        while (!stack.empty()) {
            const std::uint32_t i = stack.back();
            if (memo_.contains(i)) {
                stack.pop_back();
                continue;
            }
            const AigEdge e(i, false);
            if (aig_.isConstant(e)) {
                memo_.emplace(i, std::vector<std::uint64_t>(words_, 0));
                stack.pop_back();
                continue;
            }
            if (aig_.isInput(e)) {
                std::vector<std::uint64_t> s(words_);
                for (unsigned w = 0; w < words_; ++w)
                    s[w] = inputPattern(aig_.inputVariable(e), w, seed_);
                memo_.emplace(i, std::move(s));
                stack.pop_back();
                continue;
            }
            const AigEdge f0 = aig_.fanin0(e);
            const AigEdge f1 = aig_.fanin1(e);
            auto it0 = memo_.find(f0.nodeIndex());
            auto it1 = memo_.find(f1.nodeIndex());
            if (it0 == memo_.end()) {
                stack.push_back(f0.nodeIndex());
                continue;
            }
            if (it1 == memo_.end()) {
                stack.push_back(f1.nodeIndex());
                continue;
            }
            std::vector<std::uint64_t> s(words_);
            for (unsigned w = 0; w < words_; ++w) {
                const std::uint64_t w0 =
                    f0.complemented() ? ~it0->second[w] : it0->second[w];
                const std::uint64_t w1 =
                    f1.complemented() ? ~it1->second[w] : it1->second[w];
                s[w] = w0 & w1;
            }
            memo_.emplace(i, std::move(s));
            stack.pop_back();
        }
        return memo_.at(idx);
    }

    const Aig& aig_;
    unsigned words_;
    std::uint64_t seed_;
    std::unordered_map<std::uint32_t, std::vector<std::uint64_t>> memo_;
};

std::uint64_t hashSig(const std::vector<std::uint64_t>& s)
{
    std::uint64_t h = 0xcbf29ce484222325ull;
    for (std::uint64_t w : s) {
        h ^= w;
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

AigEdge fraigReduce(Aig& aig, AigEdge root, const FraigOptions& opts, FraigStats* stats)
{
    // The sweep's signature tables are the largest transient allocation in
    // the solver; injecting bad_alloc here exercises the degradation
    // ladder's FRAIG-off rung.
    fault::checkpointAlloc("fraig");
    FraigStats localStats;
    FraigStats& st = stats ? *stats : localStats;
    if (aig.isConstant(root) || aig.isInput(root)) return root;
    OBS_PHASE(fraigSpan, "hqs.fraig", "phase.fraig.us");
    OBS_COUNT("fraig.runs", 1);
    const std::size_t coneBefore = aig.coneSize(root);

    // Collect the cone of the (old) root: mark reachable descending, then
    // process ascending so fanins are rebuilt before fanouts.
    const std::uint32_t rootIdx = root.nodeIndex();
    std::vector<std::uint8_t> inCone(rootIdx + 1, 0);
    inCone[rootIdx] = 1;
    for (std::uint32_t idx = rootIdx; idx > 0; --idx) {
        if (!inCone[idx]) continue;
        const AigEdge e(idx, false);
        if (!aig.isAnd(e)) continue;
        inCone[aig.fanin0(e).nodeIndex()] = 1;
        inCone[aig.fanin1(e).nodeIndex()] = 1;
    }

    Signatures sigs(aig, opts.simWords, opts.seed);
    SatSolver sat;
    AigCnfBridge bridge(aig, sat);

    // Equivalence-class buckets over normalized signatures.  An entry is a
    // previously registered representative edge in normalized phase (its
    // signature has LSB 0 in word 0).
    std::unordered_map<std::uint64_t, std::vector<AigEdge>> buckets;
    auto normalize = [](AigEdge e, std::vector<std::uint64_t>& s) {
        if (s[0] & 1ull) {
            for (auto& w : s) w = ~w;
            return ~e;
        }
        return e;
    };

    // Seed the constant class so semantically constant nodes collapse.
    {
        std::vector<std::uint64_t> zero(opts.simWords, 0);
        buckets[hashSig(zero)].push_back(aig.constFalse());
    }

    /// Try to merge @p e into an existing representative.  Returns the
    /// replacement edge, or e itself when no representative matches.
    auto tryMerge = [&](AigEdge e) -> AigEdge {
        std::vector<std::uint64_t> s = sigs.ofEdge(e);
        const AigEdge norm = normalize(e, s);
        const bool flipped = (norm != e);
        auto& bucket = buckets[hashSig(s)];
        for (AigEdge rep : bucket) {
            if (rep == norm) return e; // already the representative
            if (sigs.ofEdge(rep) != s) continue; // hash collision
            if (opts.deadline.expired()) break;  // budget gone: stop proving
            if (opts.maxQueries != 0 && st.candidates >= opts.maxQueries) break;
            ++st.candidates;
            const Lit a = bridge.litFor(norm);
            const Lit b = bridge.litFor(rep);
            const Deadline dl = Deadline::in(opts.satBudgetSeconds);
            const SolveResult r1 = sat.solve({a, ~b}, dl);
            if (r1 == SolveResult::Timeout) {
                ++st.timedOut;
                continue;
            }
            if (r1 == SolveResult::Sat) {
                ++st.refuted;
                continue;
            }
            const SolveResult r2 = sat.solve({~a, b}, dl);
            if (r2 == SolveResult::Timeout) {
                ++st.timedOut;
                continue;
            }
            if (r2 == SolveResult::Sat) {
                ++st.refuted;
                continue;
            }
            ++st.merged;
            return flipped ? ~rep : rep;
        }
        bucket.push_back(norm);
        return e;
    };

    // Rebuild bottom-up with merging.  Signature computation alone is
    // O(cone * simWords), so on huge cones we must notice an expired budget
    // mid-sweep: once it is gone, keep rebuilding (cheap, and required to
    // return a valid edge) but stop proving candidates.
    bool proving = true;
    std::vector<AigEdge> rebuilt(rootIdx + 1, AigEdge());
    rebuilt[0] = aig.constFalse();
    for (std::uint32_t idx = 1; idx <= rootIdx; ++idx) {
        if (!inCone[idx]) continue;
        if (proving && (idx & 0xff) == 0 && opts.deadline.expired()) proving = false;
        const AigEdge e(idx, false);
        if (aig.isInput(e)) {
            // Register inputs as representatives (a cone can collapse to a
            // projection), but never merge one input into another.
            std::vector<std::uint64_t> s = sigs.ofEdge(e);
            const AigEdge norm = normalize(e, s);
            buckets[hashSig(s)].push_back(norm);
            rebuilt[idx] = e;
            continue;
        }
        const AigEdge f0 = aig.fanin0(e);
        const AigEdge f1 = aig.fanin1(e);
        const AigEdge a = rebuilt[f0.nodeIndex()] ^ f0.complemented();
        const AigEdge b = rebuilt[f1.nodeIndex()] ^ f1.complemented();
        AigEdge merged = aig.mkAnd(a, b);
        if (proving && !aig.isConstant(merged)) merged = tryMerge(merged);
        rebuilt[idx] = merged;
    }
    const AigEdge result = rebuilt[rootIdx] ^ root.complemented();
    OBS_COUNT("fraig.merged", static_cast<std::int64_t>(st.merged));
    const std::size_t coneAfter = aig.coneSize(result);
    if (coneBefore > 0 && coneAfter <= coneBefore) {
        const std::int64_t permille =
            static_cast<std::int64_t>((coneBefore - coneAfter) * 1000 / coneBefore);
        OBS_OBSERVE("fraig.reduction_permille", permille);
        fraigSpan.arg("reduction_permille", permille);
    }
    fraigSpan.arg("nodes_before", static_cast<std::int64_t>(coneBefore));
    fraigSpan.arg("nodes_after", static_cast<std::int64_t>(coneAfter));
    return result;
}

} // namespace hqs
