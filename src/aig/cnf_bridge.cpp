#include "src/aig/cnf_bridge.hpp"

namespace hqs {

AigEdge buildFromClause(Aig& aig, const Clause& clause)
{
    AigEdge acc = aig.constFalse();
    for (Lit l : clause) {
        acc = aig.mkOr(acc, aig.variable(l.var()) ^ l.negative());
    }
    return acc;
}

AigEdge buildFromCnf(Aig& aig, const Cnf& cnf)
{
    AigEdge acc = aig.constTrue();
    for (const Clause& c : cnf) {
        acc = aig.mkAnd(acc, buildFromClause(aig, c));
    }
    return acc;
}

Var AigCnfBridge::satVarForInput(Var v)
{
    auto it = inputVar_.find(v);
    if (it != inputVar_.end()) return it->second;
    const Var s = sat_.newVar();
    inputVar_.emplace(v, s);
    return s;
}

Var AigCnfBridge::varForNode(std::uint32_t nodeIndex)
{
    auto memo = nodeVar_.find(nodeIndex);
    if (memo != nodeVar_.end()) return memo->second;

    // Encode the cone bottom-up (iterative to avoid deep recursion).
    std::vector<std::uint32_t> stack{nodeIndex};
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        if (nodeVar_.contains(idx)) {
            stack.pop_back();
            continue;
        }
        const AigEdge e(idx, false);
        if (aig_.isConstant(e)) {
            const Var s = sat_.newVar();
            sat_.addClause({Lit::neg(s)}); // node 0 is the FALSE function
            nodeVar_.emplace(idx, s);
            stack.pop_back();
            continue;
        }
        if (aig_.isInput(e)) {
            nodeVar_.emplace(idx, satVarForInput(aig_.inputVariable(e)));
            stack.pop_back();
            continue;
        }
        const AigEdge f0 = aig_.fanin0(e);
        const AigEdge f1 = aig_.fanin1(e);
        auto it0 = nodeVar_.find(f0.nodeIndex());
        auto it1 = nodeVar_.find(f1.nodeIndex());
        if (it0 == nodeVar_.end()) {
            stack.push_back(f0.nodeIndex());
            continue;
        }
        if (it1 == nodeVar_.end()) {
            stack.push_back(f1.nodeIndex());
            continue;
        }
        const Var t = sat_.newVar();
        const Lit a = Lit(it0->second, false) ^ f0.complemented();
        const Lit b = Lit(it1->second, false) ^ f1.complemented();
        // t <-> (a & b)
        sat_.addClause({Lit::neg(t), a});
        sat_.addClause({Lit::neg(t), b});
        sat_.addClause({Lit::pos(t), ~a, ~b});
        nodeVar_.emplace(idx, t);
        stack.pop_back();
    }
    return nodeVar_.at(nodeIndex);
}

Lit AigCnfBridge::litFor(AigEdge e)
{
    const Var t = varForNode(e.nodeIndex());
    return Lit(t, false) ^ e.complemented();
}

} // namespace hqs
