#include "src/bdd/bdd.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace hqs {
namespace {

std::uint64_t mix(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t h = a * 0x9e3779b97f4a7c15ull;
    h ^= b + 0x7f4a7c15u + (h << 6) + (h >> 2);
    h *= 0xbf58476d1ce4e5b9ull;
    h ^= c + 0x94d049bbu + (h << 6) + (h >> 2);
    h *= 0x94d049bb133111ebull;
    return h;
}

} // namespace

Bdd::Bdd()
{
    nodes_.push_back(Node{kNoVar, BddRef(), BddRef()}); // 0: false
    nodes_.push_back(Node{kNoVar, BddRef(), BddRef()}); // 1: true
}

BddRef Bdd::mkNode(Var v, BddRef low, BddRef high)
{
    if (low == high) return low;
    const std::uint64_t key = mix(v, low.index(), high.index());
    auto [it, inserted] = unique_.try_emplace(key, 0);
    if (!inserted) {
        // Verify (lossless table required for canonicity): on the rare
        // collision, fall back to a linear check over the bucket chain by
        // re-probing with a salted key.
        const Node& n = nodes_[it->second];
        if (n.var == v && n.low == low && n.high == high) return BddRef(it->second);
        std::uint64_t salted = key;
        for (;;) {
            salted = mix(salted, 0x5bd1e995u, v);
            auto [it2, ins2] = unique_.try_emplace(salted, 0);
            if (!ins2) {
                const Node& m = nodes_[it2->second];
                if (m.var == v && m.low == low && m.high == high) return BddRef(it2->second);
                continue;
            }
            const auto idx = static_cast<std::uint32_t>(nodes_.size());
            nodes_.push_back(Node{v, low, high});
            it2->second = idx;
            return BddRef(idx);
        }
    }
    const auto idx = static_cast<std::uint32_t>(nodes_.size());
    nodes_.push_back(Node{v, low, high});
    it->second = idx;
    return BddRef(idx);
}

BddRef Bdd::variable(Var v)
{
    return mkNode(v, constFalse(), constTrue());
}

Var Bdd::topVar(BddRef f, BddRef g, BddRef h) const
{
    Var top = kNoVar;
    for (BddRef r : {f, g, h}) {
        if (isConstant(r)) continue;
        const Var v = node(r).var;
        if (top == kNoVar || v < top) top = v;
    }
    return top;
}

void Bdd::checkLimits()
{
    if ((++limitCheckCounter_ & 0x3ff) != 0) return;
    if (nodeLimit_ != 0 && nodes_.size() > nodeLimit_) throw BddLimitExceeded(true);
    if (deadline_.expired()) throw BddLimitExceeded(false);
}

BddRef Bdd::mkIte(BddRef f, BddRef g, BddRef h)
{
    checkLimits();
    // Terminal cases.
    if (f == constTrue()) return g;
    if (f == constFalse()) return h;
    if (g == h) return g;
    if (g == constTrue() && h == constFalse()) return f;

    const std::uint64_t key = mix(f.index(), g.index(), h.index());
    auto cached = iteCache_.find(key);
    if (cached != iteCache_.end() && cached->second[0] == f.index() &&
        cached->second[1] == g.index() && cached->second[2] == h.index()) {
        return BddRef(cached->second[3]);
    }

    const Var v = topVar(f, g, h);
    auto branch = [&](BddRef r, bool value) {
        if (isConstant(r) || node(r).var != v) return r;
        return value ? node(r).high : node(r).low;
    };
    const BddRef low = mkIte(branch(f, false), branch(g, false), branch(h, false));
    const BddRef high = mkIte(branch(f, true), branch(g, true), branch(h, true));
    const BddRef result = mkNode(v, low, high);
    iteCache_[key] = {f.index(), g.index(), h.index(), result.index()};
    return result;
}

BddRef Bdd::cofactor(BddRef f, Var v, bool value)
{
    // Per-call memo over node indices: the cone is a DAG.
    std::unordered_map<std::uint32_t, BddRef> memo;
    auto rec = [&](auto&& self, BddRef g) -> BddRef {
        if (isConstant(g)) return g;
        const Node n = node(g); // copy: nodes_ may grow below
        if (n.var > v) return g; // v is above this node: g does not mention it
        if (n.var == v) return value ? n.high : n.low;
        auto hit = memo.find(g.index());
        if (hit != memo.end()) return hit->second;
        const BddRef low = self(self, n.low);
        const BddRef high = self(self, n.high);
        const BddRef result = mkNode(n.var, low, high);
        memo.emplace(g.index(), result);
        return result;
    };
    return rec(rec, f);
}

BddRef Bdd::existsVar(BddRef f, Var v)
{
    return mkOr(cofactor(f, v, false), cofactor(f, v, true));
}

BddRef Bdd::forallVar(BddRef f, Var v)
{
    return mkAnd(cofactor(f, v, false), cofactor(f, v, true));
}

BddRef Bdd::fromCnf(const Cnf& cnf)
{
    BddRef acc = constTrue();
    for (const Clause& c : cnf) {
        BddRef clause = constFalse();
        // Build the disjunction from the highest variable down so each mkOr
        // touches a small top region.
        std::vector<Lit> lits = c.lits();
        std::sort(lits.begin(), lits.end(),
                  [](Lit a, Lit b) { return a.var() > b.var(); });
        for (Lit l : lits) {
            const BddRef v = variable(l.var());
            clause = mkOr(clause, l.negative() ? mkNot(v) : v);
        }
        acc = mkAnd(acc, clause);
        if (acc == constFalse()) break;
    }
    return acc;
}

bool Bdd::evaluate(BddRef f, const std::vector<bool>& assignment) const
{
    while (!isConstant(f)) {
        const Node& n = node(f);
        const bool v = n.var < assignment.size() && assignment[n.var];
        f = v ? n.high : n.low;
    }
    return constantValue(f);
}

std::vector<Var> Bdd::support(BddRef f) const
{
    std::vector<Var> out;
    std::vector<std::uint32_t> stack{f.index()};
    std::unordered_map<std::uint32_t, bool> seen;
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        if (idx <= 1 || seen[idx]) continue;
        seen[idx] = true;
        out.push_back(nodes_[idx].var);
        stack.push_back(nodes_[idx].low.index());
        stack.push_back(nodes_[idx].high.index());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::size_t Bdd::coneSize(BddRef f) const
{
    std::size_t count = 0;
    std::vector<std::uint32_t> stack{f.index()};
    std::unordered_map<std::uint32_t, bool> seen;
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        stack.pop_back();
        if (idx <= 1 || seen[idx]) continue;
        seen[idx] = true;
        ++count;
        stack.push_back(nodes_[idx].low.index());
        stack.push_back(nodes_[idx].high.index());
    }
    return count;
}

double Bdd::satCount(BddRef f, unsigned numVars) const
{
    // Fraction of satisfying minterms, then scale by 2^numVars.
    std::unordered_map<std::uint32_t, double> memo;
    std::vector<std::uint32_t> stack{f.index()};
    memo[0] = 0.0;
    memo[1] = 1.0;
    while (!stack.empty()) {
        const std::uint32_t idx = stack.back();
        if (memo.contains(idx)) {
            stack.pop_back();
            continue;
        }
        const Node& n = nodes_[idx];
        const auto lo = n.low.index();
        const auto hi = n.high.index();
        if (!memo.contains(lo)) {
            stack.push_back(lo);
            continue;
        }
        if (!memo.contains(hi)) {
            stack.push_back(hi);
            continue;
        }
        memo[idx] = 0.5 * (memo[lo] + memo[hi]);
        stack.pop_back();
    }
    double scale = 1.0;
    for (unsigned i = 0; i < numVars; ++i) scale *= 2.0;
    return memo[f.index()] * scale;
}

} // namespace hqs
