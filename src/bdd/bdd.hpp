// Reduced ordered binary decision diagrams (ROBDDs) [23].
//
// The paper motivates AIGs over BDDs: AIGs are non-canonical and can be
// exponentially more compact, while BDDs pay for canonicity.  This package
// provides the counterpart data structure so the claim can be measured: the
// BDD-based QBF elimination backend (bdd_qbf_solver.hpp) is the ablation
// partner of the AIG-based one, and bench_ablation reports the node-count
// and runtime differences.
//
// Implementation: classic unique-table ROBDD with a fixed variable order
// (the Var id order), ITE-based apply with a computed table, cofactor,
// single-variable and set quantification.  Nodes are never freed; a manager
// is intended to live for one problem.
#pragma once

#include <array>
#include <cstdint>
#include <exception>
#include <unordered_map>
#include <vector>

#include "src/base/literal.hpp"
#include "src/base/timer.hpp"
#include "src/cnf/cnf.hpp"

namespace hqs {

/// Thrown by Bdd operations when the manager's resource limits are hit
/// (node budget or deadline).  Callers translate this into Memout/Timeout.
class BddLimitExceeded : public std::exception {
public:
    explicit BddLimitExceeded(bool byNodes) : byNodes_(byNodes) {}
    bool byNodeLimit() const { return byNodes_; }
    const char* what() const noexcept override
    {
        return byNodes_ ? "BDD node limit exceeded" : "BDD deadline exceeded";
    }

private:
    bool byNodes_;
};

/// A BDD function handle (index into the manager's node pool).
class BddRef {
public:
    constexpr BddRef() : index_(kInvalid) {}
    explicit constexpr BddRef(std::uint32_t index) : index_(index) {}

    constexpr std::uint32_t index() const { return index_; }
    constexpr bool isValid() const { return index_ != kInvalid; }
    constexpr bool operator==(const BddRef&) const = default;

private:
    static constexpr std::uint32_t kInvalid = static_cast<std::uint32_t>(-1);
    std::uint32_t index_;
};

class Bdd {
public:
    Bdd();

    /// Install resource limits: operations throw BddLimitExceeded once the
    /// node pool exceeds @p nodeLimit (0 = unlimited) or @p deadline
    /// expires (checked periodically inside mkIte).
    void setResourceLimits(std::size_t nodeLimit, Deadline deadline)
    {
        nodeLimit_ = nodeLimit;
        deadline_ = deadline;
    }

    BddRef constFalse() const { return BddRef(0); }
    BddRef constTrue() const { return BddRef(1); }
    bool isConstant(BddRef f) const { return f.index() <= 1; }
    bool constantValue(BddRef f) const { return f.index() == 1; }

    /// The function "variable v" (variable order = Var order).
    BddRef variable(Var v);

    BddRef mkNot(BddRef f) { return mkIte(f, constFalse(), constTrue()); }
    BddRef mkAnd(BddRef f, BddRef g) { return mkIte(f, g, constFalse()); }
    BddRef mkOr(BddRef f, BddRef g) { return mkIte(f, constTrue(), g); }
    BddRef mkXor(BddRef f, BddRef g) { return mkIte(f, mkNot(g), g); }
    BddRef mkEquiv(BddRef f, BddRef g) { return mkNot(mkXor(f, g)); }
    BddRef mkImplies(BddRef f, BddRef g) { return mkOr(mkNot(f), g); }
    BddRef mkIte(BddRef f, BddRef g, BddRef h);

    /// Shannon cofactor f|v=value.
    BddRef cofactor(BddRef f, Var v, bool value);
    /// exists v. f  and  forall v. f.
    BddRef existsVar(BddRef f, Var v);
    BddRef forallVar(BddRef f, Var v);

    /// Build the BDD of a CNF (conjunction of clause disjunctions).
    BddRef fromCnf(const Cnf& cnf);

    /// Evaluate under an assignment indexed by Var (missing = false).
    bool evaluate(BddRef f, const std::vector<bool>& assignment) const;

    /// Structural variable support (sorted).
    std::vector<Var> support(BddRef f) const;

    /// Number of internal nodes in the cone of @p f (canonical size).
    std::size_t coneSize(BddRef f) const;
    /// Total allocated nodes (monotone; nodes are not freed).
    std::size_t numNodes() const { return nodes_.size(); }

    /// Number of satisfying assignments over the given variable count.
    double satCount(BddRef f, unsigned numVars) const;

private:
    struct Node {
        Var var;      ///< decision variable (kNoVar for terminals)
        BddRef low;   ///< cofactor var=0
        BddRef high;  ///< cofactor var=1
    };

    BddRef mkNode(Var v, BddRef low, BddRef high);
    Var topVar(BddRef f, BddRef g, BddRef h) const;

    const Node& node(BddRef f) const { return nodes_[f.index()]; }

    void checkLimits();

    std::vector<Node> nodes_;
    std::unordered_map<std::uint64_t, std::uint32_t> unique_;
    /// Lossy computed table: stores (f, g, h, result) and verifies the
    /// operands on lookup, so hash collisions merely evict.
    std::unordered_map<std::uint64_t, std::array<std::uint32_t, 4>> iteCache_;
    std::size_t nodeLimit_ = 0;
    Deadline deadline_;
    std::uint32_t limitCheckCounter_ = 0;
};

} // namespace hqs
