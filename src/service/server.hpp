// Solver service: an epoll front end that puts the runtime stack (guarded
// execution, portfolio racing, the shared worker pool) behind a socket.
//
// One event-loop thread owns every connection and all admission state; the
// worker pool only solves.  The loop and the workers meet at a completion
// queue drained through an eventfd wakeup, so no connection state is ever
// touched off the loop thread — the design TSan verifies in the service/*
// test partition.
//
// Two listeners:
//   * HTTP/1.1 — `POST /solve` (DQDIMACS body; per-request `timeout-ms`,
//     `rss-limit-mb`, `engine`, `certify` headers) plus `GET /metrics` (Prometheus
//     text from the obs registry), `GET /healthz`, and `GET /stats`;
//   * JSONL — one JSON request row per line, pipelined responses tagged by
//     the row's `id`, for batch clients that want many solves per
//     connection without HTTP framing overhead.
//
// Serving guarantees, enforced by the loopback stress tests:
//   * bounded admission: at most maxInflight + maxQueue solves are admitted;
//     beyond that HTTP callers get 429 + Retry-After and JSONL callers a
//     `busy` row — the solve queue cannot grow without bound;
//   * exactly one response per request: a verdict, a structured rejection,
//     or a clean disconnect — never silence, never a crash;
//   * a client that disconnects mid-solve fires its request's CancelToken
//     with CancelReason::Disconnected, so the solver unwinds at its next
//     deadline poll instead of burning a worker for a dead socket;
//   * graceful drain (SIGTERM in dqbf_serve): stop accepting, answer new
//     requests on live connections with 503, finish every in-flight solve,
//     flush all responses, then exit.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/cache/result_cache.hpp"
#include "src/service/http.hpp"
#include "src/strategy/spec.hpp"

namespace hqs::service {

struct WorkerScoreboard; // scoreboard.hpp

struct ServiceOptions {
    std::string bindAddress = "127.0.0.1";
    /// HTTP listener port; 0 binds an ephemeral port (read it back through
    /// SolverService::httpPort(), the loopback-test pattern).
    std::uint16_t httpPort = 0;
    /// JSONL listener; disable with enableJsonl = false.
    bool enableJsonl = true;
    std::uint16_t jsonlPort = 0;

    /// Join an SO_REUSEPORT listener group instead of owning the port —
    /// how supervisor workers share one service port (the kernel load
    /// balances accepts across the group).
    bool reusePort = false;

    /// When non-empty, additionally serve the HTTP GET endpoints
    /// (/metrics, /stats, /healthz) on a Unix-domain socket at this path —
    /// the per-worker scrape channel the supervisor merges fleet metrics
    /// from without consuming service-port capacity.
    std::string metricsUdsPath;

    /// Supervisor crash-containment hook: when set, every admitted solve is
    /// journaled (request hash + engine site) in this shared-memory slot for
    /// the lifetime of the solve, and the worker self-reports its RSS there
    /// every ~250 ms.  The pointed-to page must outlive the service (the
    /// supervisor owns the mapping).
    WorkerScoreboard* scoreboard = nullptr;

    /// Concurrent solves (worker threads); 0 = hardware concurrency.
    std::size_t maxInflight = 0;
    /// Admitted-but-not-started solves beyond maxInflight before requests
    /// are rejected with 429/busy.
    std::size_t maxQueue = 64;
    /// Advisory Retry-After for 429 responses, in seconds (rounded up).
    double retryAfterSeconds = 1.0;

    /// Defaults for requests that carry no per-request option.
    double defaultTimeoutSeconds = 0;
    std::size_t defaultRssLimitBytes = 0;
    /// AIG-node / ground-clause budget forwarded to the engines (0 = none).
    std::size_t nodeLimit = 0;

    std::size_t maxBodyBytes = 16u << 20;

    /// Largest serialized Skolem certificate the service will return.  A
    /// `certify` solve whose artifact exceeds this answers 413 over HTTP
    /// (the verdict still included in the body) and a `certificate_error`
    /// field on a JSONL row — the solve itself is never discarded.
    std::size_t maxCertificateBytes = 4u << 20;
    /// Self-check-before-reply: run the independent certificate checker on
    /// every certificate before attaching it to a response.  A certificate
    /// that fails its own check is withheld (the verdict still ships, with
    /// the failing status in the `certificate` object) and counted in
    /// ServiceCounters::certSelfCheckFails / `cert.selfcheck_fail`.
    bool certSelfCheck = false;

    /// Content-addressed result cache, consulted before and updated after
    /// every real solve (the solveOverride test hook bypasses it).  Shared
    /// by reference inside one process; across a forked fleet each worker
    /// gets a copy-on-write in-memory shard while the persistent directory
    /// (CacheConfig::dir) stays shared.  Null = no caching.
    std::shared_ptr<cache::ResultCache> resultCache;

    /// Solve sessions (JSONL protocol v2): resident-session bound (LRU
    /// eviction past it; 0 = unbounded) and idle TTL in seconds (0 = no
    /// expiry).  Evicted/expired sessions answer subsequent ops with a
    /// typed `session-gone` row so clients can re-open and replay.
    std::size_t maxSessions = 64;
    double sessionTtlSeconds = 0;

    /// Named strategy specs selectable per request through the `strategy`
    /// header / JSONL field.  The entry named "default" (when present)
    /// governs requests that name no strategy; with no entry at all the
    /// service keeps its hard-wired engine behavior.  Requests naming an
    /// absent strategy are rejected with 400 / an error row.
    std::map<std::string, strategy::StrategySpec> strategies;

    /// Test hook: when set, replaces the real parse+solve of every request.
    /// Receives the raw formula text and the request's Deadline (which
    /// carries the disconnect/drain CancelToken); must poll the deadline
    /// like a real engine.  Lets the stress tests hold solves open
    /// deterministically.
    std::function<SolveResult(const std::string& formula, const SolveRequestOptions& opts,
                              const Deadline& deadline)>
        solveOverride;
};

/// Live counters, updated with relaxed atomics from the loop thread and
/// readable from anywhere (tests poll them; GET /stats renders them).
struct ServiceCounters {
    std::atomic<std::uint64_t> connectionsAccepted{0};
    std::atomic<std::uint64_t> requests{0};         ///< parsed requests, any endpoint
    std::atomic<std::uint64_t> solvesAdmitted{0};
    std::atomic<std::uint64_t> solvesCompleted{0};  ///< includes orphaned completions
    std::atomic<std::uint64_t> rejectedBusy{0};     ///< 429 / busy rows
    std::atomic<std::uint64_t> rejectedDraining{0}; ///< 503 / draining rows
    std::atomic<std::uint64_t> badRequests{0};
    std::atomic<std::uint64_t> disconnects{0};        ///< peer-closed connections
    std::atomic<std::uint64_t> disconnectCancels{0};  ///< solves cancelled by one
    std::atomic<std::uint64_t> pendingSolves{0};      ///< admitted, not yet answered
    std::atomic<std::uint64_t> openConnections{0};
    std::atomic<std::uint64_t> certificatesIssued{0};  ///< certificate bytes shipped
    std::atomic<std::uint64_t> certSelfCheckFails{0};  ///< withheld by self-check
    std::atomic<std::uint64_t> certTooLarge{0};        ///< 413 / certificate_error rows
    std::atomic<std::uint64_t> cacheHits{0};       ///< verdicts served from cache
    std::atomic<std::uint64_t> cacheStores{0};     ///< verdicts written to cache
    std::atomic<std::uint64_t> cacheCertServed{0}; ///< cached certificates reused
    std::atomic<std::uint64_t> cacheCertRejects{0}; ///< hash-mismatch/malformed, withheld
};

class SolverService {
public:
    explicit SolverService(ServiceOptions opts = {});
    ~SolverService(); ///< stop()s if still running

    SolverService(const SolverService&) = delete;
    SolverService& operator=(const SolverService&) = delete;

    /// Bind, listen, and start the event-loop thread.  False (with @p error
    /// filled) when a socket step fails; the service is then inert.
    bool start(std::string* error = nullptr);

    /// Bound ports (valid after start(); the ephemeral-port answer).
    std::uint16_t httpPort() const;
    std::uint16_t jsonlPort() const;

    /// Graceful drain: stop accepting connections, reject new solve
    /// requests with 503, let in-flight solves finish, flush every
    /// response, then shut the loop down.  Thread- and signal-context-safe
    /// apart from errno clobbering (it only writes an eventfd).
    void beginDrain();

    /// Block until the loop thread has fully drained and exited.
    /// @p timeoutSeconds 0 waits forever.  True when drained.
    bool waitForDrained(double timeoutSeconds = 0);

    /// Hard stop: beginDrain() plus cancelling every in-flight solve, then
    /// join.  Safe to call repeatedly.
    void stop();

    bool draining() const;
    const ServiceCounters& counters() const;

    /// Route SIGTERM/SIGINT to beginDrain() of @p s (a second signal
    /// escalates to stop-style cancellation of in-flight solves).  The
    /// handler only writes an eventfd, so it is async-signal-safe.  Pass
    /// nullptr to detach before @p s dies.
    static void installSignalDrain(SolverService* s);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace hqs::service
