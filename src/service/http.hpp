// Wire formats of the solver service: a minimal HTTP/1.1 message codec and
// the newline-JSON (JSONL) row helpers shared by the server, the blocking
// client, and the load-generator CLI.
//
// The parser is deliberately small: request line + headers + Content-Length
// body, no chunked transfer, no multipart.  That covers every client the
// service speaks to (curl, dqbf_client, bench_service) and keeps the epoll
// loop's per-connection state to one buffer.  Limits are enforced during
// parsing so a hostile peer cannot balloon the buffer: oversized headers
// fail with 431, oversized bodies with 413, malformed framing with 400 —
// the connection is answered and closed, never crashed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace hqs::service {

struct HttpHeader {
    std::string name; ///< lower-cased during parsing
    std::string value;
};

struct HttpRequest {
    std::string method;  ///< "GET", "POST", ...
    std::string target;  ///< origin-form, e.g. "/solve"
    std::string version; ///< "HTTP/1.1"
    std::vector<HttpHeader> headers;
    std::string body;

    /// Value of the first header named @p lowerName, or nullptr.
    const std::string* header(std::string_view lowerName) const;
    /// HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    /// Connection header overrides either way.
    bool keepAlive() const;
};

struct HttpResponseMsg {
    int status = 0;
    std::string version;
    std::vector<HttpHeader> headers;
    std::string body;

    const std::string* header(std::string_view lowerName) const;
};

/// Incremental HTTP/1.1 message reader over a growing byte buffer.  consume()
/// inspects the front of @p buf; once a full message is present it is removed
/// from the buffer and returned, so pipelined messages queue up naturally.
class HttpParser {
public:
    enum class Status {
        NeedMore, ///< incomplete message, read more bytes
        Ready,    ///< one message parsed and consumed from the buffer
        Error,    ///< malformed or over-limit; see errorStatus()
    };

    explicit HttpParser(std::size_t maxHeaderBytes = 64 * 1024,
                        std::size_t maxBodyBytes = 16u << 20)
        : maxHeaderBytes_(maxHeaderBytes), maxBodyBytes_(maxBodyBytes)
    {
    }

    Status consumeRequest(std::string& buf, HttpRequest& out);
    Status consumeResponse(std::string& buf, HttpResponseMsg& out);

    /// HTTP status describing the last Error (400, 413, or 431).
    int errorStatus() const { return errorStatus_; }
    const std::string& errorReason() const { return errorReason_; }

private:
    Status fail(int status, std::string reason);

    std::size_t maxHeaderBytes_;
    std::size_t maxBodyBytes_;
    int errorStatus_ = 0;
    std::string errorReason_;
};

/// Canonical reason phrase for @p status ("OK", "Too Many Requests", ...).
const char* statusReason(int status);

/// Serialize one HTTP/1.1 response.  @p extraHeaders, when non-empty, is a
/// pre-formatted block of "Name: value\r\n" lines (e.g. "Retry-After: 1\r\n").
std::string httpResponse(int status, std::string_view contentType, std::string_view body,
                         bool keepAlive, std::string_view extraHeaders = {});

// ----------------------------------------------------------------- JSON ---

/// JSON string escaping matching the batch journal's writer (quotes,
/// backslashes, control characters as \u00XX).
std::string jsonEscape(const std::string& s);

/// Extract the string value following `"key":"` in a single-line JSON
/// object produced with jsonEscape.  False when absent or unterminated.
bool jsonStringField(const std::string& obj, const std::string& key, std::string& out);

/// Extract the number following `"key":`.  False when absent or malformed.
bool jsonNumberField(const std::string& obj, const std::string& key, double& out);

/// Extract the boolean following `"key":`.  False when absent or malformed.
bool jsonBoolField(const std::string& obj, const std::string& key, bool& out);

/// Extract the value following `"key":` as raw text whatever its JSON
/// type: quoted strings are unescaped (jsonStringField), numbers and
/// booleans are returned as their literal token ("1500", "true").  The
/// surface-agnostic getter api::parseRequestFields consumes.
bool jsonScalarField(const std::string& obj, const std::string& key, std::string& out);

// ------------------------------------------------------ solve protocol ---

/// Per-request solver options.  Field names per surface come from the one
/// api::requestFields() table: HTTP headers `timeout-ms`, `rss-limit-mb`,
/// `engine`, `certify`, `solver-cache`, `strategy`, `format`; JSONL fields
/// `timeout_ms`, `rss_limit_mb`, `engine`, `certify`, `cache`, `strategy`,
/// `format` plus the v2 session fields (`op`, `session`, `add_group`,
/// `clauses`, `retract_group`, `gate`, `assume`).  The v1 spellings
/// `cache_control` / `cache-control` still parse for one release and tag
/// the response as deprecated.
struct SolveRequestOptions {
    double timeoutSeconds = 0;      ///< 0 = server default
    std::size_t rssLimitBytes = 0;  ///< 0 = server default
    std::string engine;             ///< "" = server default ("hqs")
    /// Request a Skolem certificate with a SAT verdict.  The response gains
    /// a `certificate` object (serialized artifact plus metadata) unless the
    /// artifact exceeds the server's byte cap — then HTTP callers get 413
    /// and JSONL rows a `certificate_error` field.
    bool certify = false;
    /// Per-request result-cache override: "" (follow the strategy's cache
    /// policy), "on", "off", or "bypass" (solve fresh but refresh the
    /// entry).  A served-from-cache response carries `"cached":true`.
    std::string cacheControl;
    /// Strategy spec to solve under, by name ("" = the server's default).
    /// Naming a strategy the server does not have is a 400 / error row.
    std::string strategy;
    /// Input format of the request body: "" (content-sniff: a '#QCIR'
    /// header means DQCIR, anything else DQDIMACS), "dqdimacs", or
    /// "dqcir".  DQCIR requests lower through the circuit front end and
    /// never touch the result cache (cache.bypass.format).
    std::string format;

    // ----- v2 session ops (JSONL only; see DESIGN.md §12) -----
    std::string op;           ///< "" | "open" | "delta" | "solve" | "close"
    std::string session;      ///< target session id (delta/solve/close)
    std::string addGroup;     ///< delta: clause group to append
    std::string deltaClauses; ///< delta: its clauses, DIMACS text
    std::string retractGroup; ///< delta: group to retract
    std::string gate;         ///< delta: DQCIR gate replacement line
    std::string assume;       ///< delta/solve: assumption literals
};

/// The v2 handshake row `{"v":N}` (newline included).  The server answers
/// `{"protocol":"v2"}` for the current version, `{"protocol":"v1-compat"}`
/// for v1, and an error row for anything newer.
std::string buildJsonlHandshake(int version);

/// One `POST /solve` request with @p formula (DQDIMACS text) as the body.
std::string buildHttpSolveRequest(const std::string& formula,
                                  const SolveRequestOptions& opts, bool keepAlive);

/// One JSONL request row: {"id":...,...options...,"formula":...}.
/// Terminating newline included; the formula's newlines are escaped, so the
/// row is always a single line.  Session ops emit their op/session/delta
/// fields; @p formula may be "" (ops other than open and stateless solve),
/// in which case no formula field is emitted.
std::string buildJsonlSolveRequest(const std::string& id, const std::string& formula,
                                   const SolveRequestOptions& opts);

} // namespace hqs::service
