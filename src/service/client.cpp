#include "src/service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <utility>

namespace hqs::service {

void ignoreSigpipe()
{
    struct sigaction sa{};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPIPE, &sa, nullptr);
}

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buf_(std::move(other.buf_)),
      parser_(other.parser_)
{
}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buf_ = std::move(other.buf_);
        parser_ = other.parser_;
    }
    return *this;
}

bool BlockingClient::connect(const std::string& host, std::uint16_t port,
                             std::string* error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        if (error) *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (error) *error = "bad address: " + host;
        close();
        return false;
    }
    while (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        if (errno == EINTR) continue;
        if (error) *error = std::string("connect: ") + std::strerror(errno);
        close();
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
}

bool BlockingClient::sendAll(std::string_view data)
{
    while (!data.empty()) {
        // MSG_NOSIGNAL: a server that already hung up yields EPIPE here, a
        // short write is retried — either way no signal, no partial frame
        // treated as success.
        const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
        if (n > 0) {
            data.remove_prefix(static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        close();
        return false;
    }
    return true;
}

bool BlockingClient::readResponse(HttpResponseMsg& out)
{
    while (true) {
        const HttpParser::Status st = parser_.consumeResponse(buf_, out);
        if (st == HttpParser::Status::Ready) return true;
        if (st == HttpParser::Status::Error) return false;
        char chunk[16 * 1024];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false; // EOF or reset with no complete response
    }
}

bool BlockingClient::readLine(std::string& out)
{
    while (true) {
        const std::size_t eol = buf_.find('\n');
        if (eol != std::string::npos) {
            out = buf_.substr(0, eol);
            buf_.erase(0, eol + 1);
            if (!out.empty() && out.back() == '\r') out.pop_back();
            return true;
        }
        char chunk[16 * 1024];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
}

void BlockingClient::shutdownWrite()
{
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void BlockingClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

} // namespace hqs::service
