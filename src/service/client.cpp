#include "src/service/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace hqs::service {

void ignoreSigpipe()
{
    struct sigaction sa{};
    sa.sa_handler = SIG_IGN;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGPIPE, &sa, nullptr);
}

BlockingClient::BlockingClient(BlockingClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buf_(std::move(other.buf_)),
      parser_(other.parser_)
{
}

BlockingClient& BlockingClient::operator=(BlockingClient&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        buf_ = std::move(other.buf_);
        parser_ = other.parser_;
    }
    return *this;
}

bool BlockingClient::connect(const std::string& host, std::uint16_t port,
                             std::string* error)
{
    close();
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        if (error) *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        if (error) *error = "bad address: " + host;
        close();
        return false;
    }
    while (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        if (errno == EINTR) continue;
        if (error) *error = std::string("connect: ") + std::strerror(errno);
        close();
        return false;
    }
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    return true;
}

bool BlockingClient::connectUnix(const std::string& path, double timeoutSeconds,
                                 std::string* error)
{
    close();
    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        if (error) *error = "uds path too long: " + path;
        return false;
    }
    fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0) {
        if (error) *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    while (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
        if (errno == EINTR) continue;
        if (error) *error = std::string("connect ") + path + ": " + std::strerror(errno);
        close();
        return false;
    }
    if (timeoutSeconds > 0) {
        timeval tv{};
        tv.tv_sec = static_cast<time_t>(timeoutSeconds);
        tv.tv_usec = static_cast<suseconds_t>(
            (timeoutSeconds - static_cast<double>(tv.tv_sec)) * 1e6);
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
        ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
    }
    return true;
}

bool BlockingClient::sendAll(std::string_view data)
{
    while (!data.empty()) {
        // MSG_NOSIGNAL: a server that already hung up yields EPIPE here, a
        // short write is retried — either way no signal, no partial frame
        // treated as success.
        const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
        if (n > 0) {
            data.remove_prefix(static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        close();
        return false;
    }
    return true;
}

bool BlockingClient::readResponse(HttpResponseMsg& out)
{
    while (true) {
        const HttpParser::Status st = parser_.consumeResponse(buf_, out);
        if (st == HttpParser::Status::Ready) return true;
        if (st == HttpParser::Status::Error) return false;
        char chunk[16 * 1024];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false; // EOF or reset with no complete response
    }
}

bool BlockingClient::readLine(std::string& out)
{
    while (true) {
        const std::size_t eol = buf_.find('\n');
        if (eol != std::string::npos) {
            out = buf_.substr(0, eol);
            buf_.erase(0, eol + 1);
            if (!out.empty() && out.back() == '\r') out.pop_back();
            return true;
        }
        char chunk[16 * 1024];
        const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            continue;
        }
        if (n < 0 && errno == EINTR) continue;
        return false;
    }
}

void BlockingClient::shutdownWrite()
{
    if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void BlockingClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    buf_.clear();
}

double parseRetryAfterSeconds(const std::string& retryAfterHeader,
                              const std::string& body, double fallbackSeconds)
{
    if (!retryAfterHeader.empty()) {
        char* end = nullptr;
        const double secs = std::strtod(retryAfterHeader.c_str(), &end);
        if (end != retryAfterHeader.c_str() && std::isfinite(secs) && secs >= 0)
            return secs;
    }
    const auto pos = body.find("\"retry_after_ms\":");
    if (pos != std::string::npos) {
        char* end = nullptr;
        const double ms = std::strtod(body.c_str() + pos + 17, &end);
        if (std::isfinite(ms) && ms >= 0) return ms / 1000.0;
    }
    return fallbackSeconds < 0 ? 0 : fallbackSeconds;
}

double retryDelaySeconds(int attempt, double baseSeconds, double capSeconds,
                         double serverHintSeconds, std::uint64_t jitterSeed)
{
    double delay = baseSeconds * std::pow(2.0, std::max(0, attempt));
    delay = std::min(delay, capSeconds);
    delay = std::max(delay, serverHintSeconds);
    // splitmix64 finisher: a cheap, stateless hash of (seed, attempt) into
    // a [-0.25, +0.25] jitter factor.
    std::uint64_t z = jitterSeed + 0x9e3779b97f4a7c15ull * (attempt + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    z ^= z >> 31;
    const double unit = static_cast<double>(z % 10'000) / 10'000.0; // [0,1)
    const double jitter = 1.0 + (unit - 0.5) * 0.5;
    return std::min(delay * jitter, capSeconds * 1.25);
}

} // namespace hqs::service
