#include "src/service/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <deque>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/base/cancel.hpp"
#include "src/cache/canonical.hpp"
#include "src/cegar/cegar_solver.hpp"
#include "src/cert/certificate.hpp"
#include "src/cert/extract.hpp"
#include "src/circuit/dqcir_parser.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/report.hpp"
#include "src/runtime/api.hpp"
#include "src/runtime/guard.hpp"
#include "src/runtime/portfolio.hpp"
#include "src/runtime/session.hpp"
#include "src/runtime/thread_pool.hpp"
#include "src/service/scoreboard.hpp"

namespace hqs::service {
namespace {

using api::EngineSpec;

/// Shared request validation plus the service's own engine policy: the
/// parsers fill an api::SolveRequest, validate() applies the one
/// non-finite/negative-budget and unknown-engine gate, and this rejects the
/// engines the service does not expose.  Returns the problem text ("" = ok)
/// and the parsed engine in @p spec.
std::string vetRequest(const api::SolveRequest& request, EngineSpec& spec)
{
    const std::string err = request.firstError();
    if (!err.empty()) return err;
    spec = *request.parsedEngine();
    if (spec.kind == EngineSpec::Kind::Idq || spec.kind == EngineSpec::Kind::Expand)
        return "engine not available over the service";
    return {};
}

/// Header-block cap handed to HttpParser and used to bound per-connection
/// input buffering.
constexpr std::size_t kMaxHeaderBytes = 64 * 1024;

/// Copy the validated request into the wire-options struct the worker jobs
/// consume (including the v2 session fields).
SolveRequestOptions toWireOptions(const api::SolveRequest& request)
{
    SolveRequestOptions ropts;
    ropts.timeoutSeconds = request.timeoutSeconds;
    ropts.rssLimitBytes = request.rssLimitBytes;
    ropts.certify = request.certify;
    ropts.cacheControl = request.cacheControl;
    ropts.strategy = request.strategy;
    ropts.format = request.format;
    ropts.op = request.op;
    ropts.session = request.session;
    ropts.addGroup = request.addGroup;
    ropts.deltaClauses = request.deltaClauses;
    ropts.retractGroup = request.retractGroup;
    ropts.gate = request.gate;
    ropts.assume = request.assume;
    return ropts;
}

/// `"deprecated":["cache_control",...]` fragment for JSONL responses whose
/// request used pre-v2 field spellings ("" when it used none).
std::string deprecatedFragment(const std::vector<api::FieldWarning>& warnings)
{
    if (warnings.empty()) return {};
    std::string out = "\"deprecated\":[";
    for (std::size_t i = 0; i < warnings.size(); ++i) {
        if (i) out += ",";
        out += "\"" + jsonEscape(warnings[i].field) + "\"";
    }
    out += "]";
    return out;
}

/// The HTTP flavour of the same warning: one Deprecation header per used
/// alias, naming the replacement.
std::string deprecationHeaders(const std::vector<api::FieldWarning>& warnings)
{
    std::string out;
    for (const api::FieldWarning& w : warnings)
        out += "Deprecation: " + w.field + " (" + w.message + ")\r\n";
    return out;
}

/// The signal hook (installSignalDrain): the handler only bumps a counter
/// and writes the registered eventfd; the loop thread does the actual
/// drain/stop when the wakeup arrives.
std::atomic<int> gSignalWakeFd{-1};
std::atomic<unsigned> gSignalCount{0};

extern "C" void serviceSignalHandler(int)
{
    gSignalCount.fetch_add(1, std::memory_order_relaxed);
    const int fd = gSignalWakeFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t n = ::write(fd, &one, sizeof one);
    }
}

} // namespace

struct SolverService::Impl {
    explicit Impl(ServiceOptions o) : opts(std::move(o))
    {
        if (opts.maxInflight == 0)
            opts.maxInflight = std::max(1u, std::thread::hardware_concurrency());
        SessionManagerOptions smo;
        smo.maxSessions = opts.maxSessions;
        smo.ttlSeconds = opts.sessionTtlSeconds;
        sessions = std::make_unique<SessionManager>(smo);
    }

    // ------------------------------------------------------------ state --

    ServiceOptions opts;
    ServiceCounters counters;
    Timer uptime;

    int epollFd = -1;
    int wakeFd = -1;
    int httpListenFd = -1;
    int jsonlListenFd = -1;
    int udsListenFd = -1;
    std::uint16_t boundHttpPort = 0;
    std::uint16_t boundJsonlPort = 0;
    Timer rssReport; ///< rate-limits the scoreboard RSS self-report

    std::thread loopThread;
    bool started = false;

    std::atomic<bool> drainRequested{false};
    std::atomic<bool> hardStopRequested{false};
    std::atomic<bool> drainOnSignal{false};
    /// gSignalCount value at installSignalDrain() time — signals delivered
    /// before this instance took over the handler (earlier instances in the
    /// same process, or a master process pre-fork) must not count against it.
    std::atomic<unsigned> signalBaseline{0};
    unsigned signalsSeen = 0; ///< loop-thread-only: signals consumed past the baseline

    std::mutex drainMu;
    std::condition_variable drainCv;
    bool drained = false;

    struct Completion {
        std::uint64_t reqId = 0;
        std::string bodyFragment; ///< `"result":...` JSON fields, no braces
        /// HTTP status of the response (JSONL rows ignore it): 200, or 413
        /// when a requested certificate exceeded maxCertificateBytes.
        int status = 200;
        /// Session id a successful "open" op allocated; the loop thread
        /// closes it again when the opener disconnected before the reply
        /// (no client ever learned the id — an orphan otherwise).
        std::string openedSession;
    };
    std::mutex completionMu;
    std::vector<Completion> completions;

    struct Conn {
        int fd = -1;
        bool jsonl = false;
        bool wantWrite = false; ///< EPOLLOUT currently armed
        bool closeAfterFlush = false;
        std::string in;
        std::string out; ///< unsent bytes (already-sent prefix erased)
        std::vector<std::uint64_t> outstanding;
        HttpParser parser;
    };
    std::unordered_map<int, Conn> conns;

    struct Pending {
        int connFd = -1; ///< -1 once the client is gone (response discarded)
        bool jsonl = false;
        bool keepAlive = true;
        std::string rowId; ///< JSONL `id` echo
        CancelToken token;
        /// Session this op was serialized under ("" = stateless request);
        /// completion releases the per-session FIFO queue.
        std::string sessionId;
        /// JSONL protocol tag appended to the response row ("v2" /
        /// "v1-compat"; "" = HTTP, no tag).
        std::string protocol;
        /// Prebuilt `"deprecated":[...]` fragment when the request used
        /// pre-v2 field spellings ("" = none).
        std::string deprecated;
        /// Extra HTTP response headers (deprecation warnings).
        std::string extraHeaders;
    };
    std::unordered_map<std::uint64_t, Pending> pending;
    std::uint64_t nextReqId = 1;

    // Sessions (JSONL protocol v2).  The manager is thread-safe; the
    // per-session FIFO op queues below are loop-thread-only, so ops against
    // one session never run concurrently while different sessions still
    // solve in parallel on the worker pool.
    std::unique_ptr<SessionManager> sessions;
    struct SessionOp {
        std::uint64_t reqId = 0;
        int ownerFd = -1; ///< opener connection ("open" ops; owner teardown)
        /// Pinned at admission: an op already queued keeps its session
        /// alive through eviction (null for "open"/"close").
        std::shared_ptr<Session> session;
        std::string formula; ///< "open" payload
        SolveRequestOptions ropts;
    };
    struct SessionQueue {
        bool busy = false; ///< an op for this session is on the pool
        std::deque<SessionOp> waiting;
    };
    std::unordered_map<std::string, SessionQueue> sessionQueues;

    // Workers.  Queue capacity exceeds the admission bound so submit()
    // never blocks the event loop.
    std::unique_ptr<ThreadPool> pool;

    // ------------------------------------------------------------ setup --

    int listenOn(std::uint16_t port, std::uint16_t& boundPort, std::string* error)
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
        if (fd < 0) {
            if (error) *error = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (opts.reusePort) ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        if (::inet_pton(AF_INET, opts.bindAddress.c_str(), &addr.sin_addr) != 1) {
            if (error) *error = "bad bind address: " + opts.bindAddress;
            ::close(fd);
            return -1;
        }
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
            ::listen(fd, 128) != 0) {
            if (error) *error = std::string("bind/listen: ") + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        socklen_t len = sizeof addr;
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
        boundPort = ntohs(addr.sin_port);
        return fd;
    }

    /// Bind + listen the metrics/stats Unix-domain socket.  A stale socket
    /// file from a crashed predecessor is unlinked first — the supervisor
    /// hands every respawn the same per-slot path.
    int listenOnUds(const std::string& path, std::string* error)
    {
        sockaddr_un addr{};
        if (path.size() >= sizeof(addr.sun_path)) {
            if (error) *error = "metrics UDS path too long: " + path;
            return -1;
        }
        const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
        if (fd < 0) {
            if (error) *error = std::string("uds socket: ") + std::strerror(errno);
            return -1;
        }
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
        ::unlink(path.c_str());
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
            ::listen(fd, 16) != 0) {
            if (error) *error = std::string("uds bind/listen: ") + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        return fd;
    }

    bool epollAdd(int fd, std::uint32_t events)
    {
        epoll_event ev{};
        ev.events = events;
        ev.data.fd = fd;
        return ::epoll_ctl(epollFd, EPOLL_CTL_ADD, fd, &ev) == 0;
    }

    void epollMod(int fd, std::uint32_t events)
    {
        epoll_event ev{};
        ev.events = events;
        ev.data.fd = fd;
        ::epoll_ctl(epollFd, EPOLL_CTL_MOD, fd, &ev);
    }

    bool start(std::string* error)
    {
        epollFd = ::epoll_create1(EPOLL_CLOEXEC);
        wakeFd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
        if (epollFd < 0 || wakeFd < 0) {
            if (error) *error = std::string("epoll/eventfd: ") + std::strerror(errno);
            return false;
        }
        httpListenFd = listenOn(opts.httpPort, boundHttpPort, error);
        if (httpListenFd < 0) return false;
        if (opts.enableJsonl) {
            jsonlListenFd = listenOn(opts.jsonlPort, boundJsonlPort, error);
            if (jsonlListenFd < 0) return false;
        }
        if (!opts.metricsUdsPath.empty()) {
            udsListenFd = listenOnUds(opts.metricsUdsPath, error);
            if (udsListenFd < 0) return false;
        }
        if (!epollAdd(wakeFd, EPOLLIN) || !epollAdd(httpListenFd, EPOLLIN) ||
            (jsonlListenFd >= 0 && !epollAdd(jsonlListenFd, EPOLLIN)) ||
            (udsListenFd >= 0 && !epollAdd(udsListenFd, EPOLLIN))) {
            if (error) *error = std::string("epoll_ctl: ") + std::strerror(errno);
            return false;
        }
        pool = std::make_unique<ThreadPool>(opts.maxInflight,
                                            opts.maxInflight + opts.maxQueue + 1);
        loopThread = std::thread([this] { runLoop(); });
        started = true;
        return true;
    }

    // ------------------------------------------------------------- loop --

    void runLoop()
    {
        epoll_event events[64];
        bool running = true;
        while (running) {
            // The 500 ms cap is a belt-and-braces heartbeat: every real
            // transition also writes wakeFd.
            const int n = ::epoll_wait(epollFd, events, 64, 500);
            for (int i = 0; i < n; ++i) {
                const int fd = events[i].data.fd;
                const std::uint32_t ev = events[i].events;
                if (fd == wakeFd) {
                    drainWakeups();
                } else if (fd == httpListenFd || fd == jsonlListenFd ||
                           fd == udsListenFd) {
                    acceptAll(fd, fd == jsonlListenFd);
                } else {
                    auto it = conns.find(fd);
                    if (it == conns.end()) continue; // closed earlier this batch
                    if (ev & (EPOLLHUP | EPOLLERR)) {
                        closeConn(it->second, /*peerClosed=*/true);
                        continue;
                    }
                    if (ev & (EPOLLIN | EPOLLRDHUP)) {
                        if (!readConn(it->second)) continue; // conn destroyed
                    }
                    if (ev & EPOLLOUT) {
                        auto again = conns.find(fd);
                        if (again != conns.end()) flushOut(again->second);
                    }
                }
            }
            handleSignals();
            processCompletions();
            if (opts.scoreboard && rssReport.elapsedMilliseconds() >= 250.0) {
                opts.scoreboard->rssBytes.store(readRssBytes(),
                                                std::memory_order_relaxed);
                rssReport.reset();
            }
            if (hardStopRequested.load(std::memory_order_acquire)) cancelAllPending();
            running = !readyToExit();
        }
        shutdownLoop();
    }

    void drainWakeups()
    {
        std::uint64_t buf;
        while (::read(wakeFd, &buf, sizeof buf) > 0) {
        }
        if (drainRequested.load(std::memory_order_acquire)) closeListeners();
    }

    void handleSignals()
    {
        if (!drainOnSignal.load(std::memory_order_relaxed)) return;
        const unsigned seen = gSignalCount.load(std::memory_order_relaxed) -
                              signalBaseline.load(std::memory_order_relaxed);
        if (seen == signalsSeen) return;
        signalsSeen = seen;
        // First signal: graceful drain.  Any further signal: cancel the
        // in-flight solves too.
        if (!drainRequested.load(std::memory_order_acquire)) {
            drainRequested.store(true, std::memory_order_release);
            closeListeners();
        } else {
            hardStopRequested.store(true, std::memory_order_release);
        }
        if (seen > 1) hardStopRequested.store(true, std::memory_order_release);
    }

    void closeListeners()
    {
        for (int* fd : {&httpListenFd, &jsonlListenFd}) {
            if (*fd >= 0) {
                ::epoll_ctl(epollFd, EPOLL_CTL_DEL, *fd, nullptr);
                ::close(*fd);
                *fd = -1;
            }
        }
    }

    void cancelAllPending()
    {
        for (auto& [id, p] : pending) p.token.requestCancel(CancelReason::User);
    }

    bool readyToExit()
    {
        if (!drainRequested.load(std::memory_order_acquire)) return false;
        if (!pending.empty()) return false;
        for (const auto& [fd, c] : conns)
            if (!c.out.empty()) return false;
        return true;
    }

    void shutdownLoop()
    {
        closeListeners();
        if (udsListenFd >= 0) {
            ::epoll_ctl(epollFd, EPOLL_CTL_DEL, udsListenFd, nullptr);
            ::close(udsListenFd);
            udsListenFd = -1;
            ::unlink(opts.metricsUdsPath.c_str());
        }
        std::vector<int> fds;
        fds.reserve(conns.size());
        for (const auto& [fd, c] : conns) fds.push_back(fd);
        for (int fd : fds) {
            auto it = conns.find(fd);
            if (it != conns.end()) closeConn(it->second, /*peerClosed=*/false);
        }
        {
            std::lock_guard<std::mutex> lock(drainMu);
            drained = true;
        }
        drainCv.notify_all();
    }

    // ------------------------------------------------------ connections --

    void acceptAll(int listenFd, bool jsonl)
    {
        while (true) {
            const int fd = ::accept4(listenFd, nullptr, nullptr,
                                     SOCK_CLOEXEC | SOCK_NONBLOCK);
            if (fd < 0) {
                if (errno == EAGAIN || errno == EWOULDBLOCK) return;
                if (errno == EINTR) continue;
                return; // transient accept failure; the listener stays armed
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            Conn& c = conns[fd];
            c.fd = fd;
            c.jsonl = jsonl;
            c.parser = HttpParser(kMaxHeaderBytes, opts.maxBodyBytes);
            if (!epollAdd(fd, EPOLLIN | EPOLLRDHUP)) {
                conns.erase(fd);
                ::close(fd);
                continue;
            }
            counters.connectionsAccepted.fetch_add(1, std::memory_order_relaxed);
            counters.openConnections.fetch_add(1, std::memory_order_relaxed);
            OBS_COUNT("service.connections", 1);
        }
    }

    /// Tear down @p c: cancel its outstanding solves (client-gone), orphan
    /// their pending records, unregister and close the socket.
    void closeConn(Conn& c, bool peerClosed)
    {
        if (peerClosed) {
            counters.disconnects.fetch_add(1, std::memory_order_relaxed);
            OBS_COUNT("service.disconnects", 1);
        }
        for (std::uint64_t reqId : c.outstanding) {
            auto it = pending.find(reqId);
            if (it == pending.end()) continue;
            it->second.connFd = -1;
            if (peerClosed) {
                it->second.token.requestCancel(CancelReason::Disconnected);
                counters.disconnectCancels.fetch_add(1, std::memory_order_relaxed);
                OBS_COUNT("service.disconnect_cancels", 1);
            }
        }
        const int fd = c.fd;
        // Disconnect closes the sessions this connection opened (safe on the
        // owner fd: teardown runs before the kernel can reuse the number).
        // Ops already queued pinned their session shared_ptr and finish.
        if (sessions) sessions->closeOwned(static_cast<std::uint64_t>(fd));
        ::epoll_ctl(epollFd, EPOLL_CTL_DEL, fd, nullptr);
        ::close(fd);
        conns.erase(fd); // invalidates c
        counters.openConnections.fetch_sub(1, std::memory_order_relaxed);
    }

    /// Read everything available.  Returns false when the connection was
    /// destroyed (peer close, fatal error, or protocol error).
    bool readConn(Conn& c)
    {
        char buf[64 * 1024];
        bool sawEof = false;
        while (true) {
            const ssize_t n = ::recv(c.fd, buf, sizeof buf, 0);
            if (n > 0) {
                c.in.append(buf, static_cast<std::size_t>(n));
                // A JSONL peer streaming an endless unterminated line would
                // otherwise grow the buffer without bound.
                if (c.jsonl && c.in.size() > opts.maxBodyBytes + 4096) {
                    queueWrite(c, "{\"error\":\"line too long\"}\n");
                    c.closeAfterFlush = true;
                    c.in.clear();
                    return flushOrKeep(c);
                }
                // An HTTP peer can keep streaming while parseLoop holds a
                // pipelined request behind an outstanding solve; bound that
                // buffering to one full request plus slack.
                if (!c.jsonl &&
                    c.in.size() > kMaxHeaderBytes + opts.maxBodyBytes + 4096) {
                    counters.badRequests.fetch_add(1, std::memory_order_relaxed);
                    queueWrite(c, httpResponse(413, "application/json",
                                               "{\"error\":\"pipelined input exceeds "
                                               "limit\"}",
                                               /*keepAlive=*/false));
                    c.closeAfterFlush = true;
                    c.in.clear();
                    return flushOrKeep(c);
                }
                continue;
            }
            if (n == 0) {
                sawEof = true;
                break;
            }
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) continue;
            sawEof = true; // ECONNRESET & friends: treat as disconnect
            break;
        }
        if (!c.in.empty() && !parseLoop(c)) return false;
        if (sawEof) {
            auto it = conns.find(c.fd);
            if (it != conns.end()) closeConn(it->second, /*peerClosed=*/true);
            return false;
        }
        return true;
    }

    /// Parse and dispatch every complete message in @p c's input buffer.
    /// Returns false when the connection was destroyed.
    bool parseLoop(Conn& c)
    {
        if (c.jsonl) {
            std::size_t eol;
            while ((eol = c.in.find('\n')) != std::string::npos) {
                std::string line = c.in.substr(0, eol);
                c.in.erase(0, eol + 1);
                if (!line.empty() && line.back() == '\r') line.pop_back();
                if (!line.empty() && !handleJsonlLine(c, line)) return false;
            }
            return true;
        }
        while (true) {
            // Hold pipelined HTTP requests until the outstanding solve has
            // answered, so responses always come back in request order.
            if (!c.outstanding.empty()) return true;
            HttpRequest req;
            const HttpParser::Status st = c.parser.consumeRequest(c.in, req);
            if (st == HttpParser::Status::NeedMore) return true;
            if (st == HttpParser::Status::Error) {
                counters.badRequests.fetch_add(1, std::memory_order_relaxed);
                queueWrite(c, httpResponse(c.parser.errorStatus(), "application/json",
                                           "{\"error\":\"" +
                                               jsonEscape(c.parser.errorReason()) + "\"}",
                                           /*keepAlive=*/false));
                c.closeAfterFlush = true;
                return flushOrKeep(c);
            }
            if (!handleHttpRequest(c, req)) return false;
        }
    }

    // -------------------------------------------------------- endpoints --

    bool handleHttpRequest(Conn& c, const HttpRequest& req)
    {
        counters.requests.fetch_add(1, std::memory_order_relaxed);
        OBS_COUNT("service.requests", 1);
        const bool keepAlive = req.keepAlive();
        if (!keepAlive) c.closeAfterFlush = true;

        if (req.method == "GET" && req.target == "/healthz") {
            const bool drain = drainRequested.load(std::memory_order_acquire);
            queueWrite(c, httpResponse(drain ? 503 : 200, "text/plain",
                                       drain ? "draining\n" : "ok\n", keepAlive));
            return flushOrKeep(c);
        }
        if (req.method == "GET" && req.target == "/metrics") {
            std::ostringstream os;
            obs::writePrometheusText(os, obs::globalRegistry().snapshot());
            queueWrite(c, httpResponse(200, "text/plain; version=0.0.4", os.str(),
                                       keepAlive));
            return flushOrKeep(c);
        }
        if (req.method == "GET" && req.target == "/stats") {
            queueWrite(c, httpResponse(200, "application/json", statsJson(), keepAlive));
            return flushOrKeep(c);
        }
        if (req.method == "POST" && req.target == "/solve") {
            return handleSolveRequest(c, req, keepAlive);
        }
        counters.badRequests.fetch_add(1, std::memory_order_relaxed);
        queueWrite(c, httpResponse(req.method == "GET" || req.method == "POST" ? 404 : 405,
                                   "application/json", "{\"error\":\"no such endpoint\"}",
                                   keepAlive));
        return flushOrKeep(c);
    }

    bool handleSolveRequest(Conn& c, const HttpRequest& req, bool keepAlive)
    {
        api::SolveRequest request;
        EngineSpec spec;
        std::string problem;
        std::vector<api::FieldWarning> warnings;
        if (req.body.empty()) {
            problem = "empty body";
        } else {
            problem = api::parseRequestFields(
                request, api::RequestSurface::Http,
                [&req](const std::string& name) -> std::optional<std::string> {
                    if (const std::string* v = req.header(name)) return *v;
                    return std::nullopt;
                },
                &warnings);
            if (problem.empty()) problem = vetRequest(request, spec);
            if (problem.empty()) problem = vetStrategy(request.strategy);
        }
        if (!problem.empty()) {
            counters.badRequests.fetch_add(1, std::memory_order_relaxed);
            queueWrite(c, httpResponse(400, "application/json",
                                       "{\"error\":\"" + jsonEscape(problem) + "\"}",
                                       keepAlive));
            return flushOrKeep(c);
        }
        std::string reject;
        std::string extraHeaders;
        int status = admissionStatus(&reject, &extraHeaders);
        if (status != 200) {
            queueWrite(c, httpResponse(status, "application/json", reject, keepAlive,
                                       extraHeaders));
            return flushOrKeep(c);
        }
        admit(c, /*rowId=*/"", keepAlive, req.body, toWireOptions(request), spec,
              /*protocol=*/"", /*deprecated=*/"", deprecationHeaders(warnings));
        return true;
    }

    /// Handle one JSONL request row.  Returns false when the connection was
    /// destroyed (same contract as handleHttpRequest): the error/reject
    /// paths flush immediately, and a flush failure tears the conn down.
    ///
    /// Protocol versioning: a row carrying an `op` field is v2 and its
    /// response is tagged `"protocol":"v2"`; a bare-formula row is the v1
    /// shape, still accepted for one release and tagged
    /// `"protocol":"v1-compat"`.  A `{"v":N}` row (no op, no formula) is the
    /// explicit handshake.
    bool handleJsonlLine(Conn& c, const std::string& line)
    {
        counters.requests.fetch_add(1, std::memory_order_relaxed);
        OBS_COUNT("service.requests", 1);
        std::string id;
        jsonStringField(line, "id", id);
        const std::string idPrefix =
            id.empty() ? std::string() : "\"id\":\"" + jsonEscape(id) + "\",";

        double ver = 0;
        if (jsonNumberField(line, "v", ver) && line.find("\"op\":") == std::string::npos &&
            line.find("\"formula\":") == std::string::npos) {
            if (ver == 2) {
                queueWrite(c, "{" + idPrefix + "\"protocol\":\"v2\"}\n");
            } else if (ver == 1) {
                queueWrite(c, "{" + idPrefix + "\"protocol\":\"v1-compat\"}\n");
            } else {
                counters.badRequests.fetch_add(1, std::memory_order_relaxed);
                queueWrite(c, "{" + idPrefix +
                                  "\"error\":\"unsupported protocol version\","
                                  "\"protocol\":\"v2\"}\n");
            }
            return flushOrKeep(c);
        }

        api::SolveRequest request;
        EngineSpec spec;
        std::vector<api::FieldWarning> warnings;
        // One table-driven parse shared with the HTTP and CLI surfaces;
        // validate() (inside vetRequest) judges the extracted values.
        std::string problem = api::parseRequestFields(
            request, api::RequestSurface::Jsonl,
            [&line](const std::string& name) -> std::optional<std::string> {
                std::string v;
                if (jsonScalarField(line, name, v)) return v;
                return std::nullopt;
            },
            &warnings);
        const bool v2 = !request.op.empty();
        const std::string protocol = v2 ? "v2" : "v1-compat";
        const std::string protoSuffix = ",\"protocol\":\"" + protocol + "\"";
        const std::string deprecated = deprecatedFragment(warnings);

        std::string formula;
        jsonStringField(line, "formula", formula);
        const bool needsFormula = request.op.empty() || request.op == "open";
        if (problem.empty() && needsFormula && formula.empty())
            problem = "missing formula";
        if (problem.empty()) problem = vetRequest(request, spec);
        if (problem.empty()) problem = vetStrategy(request.strategy);
        if (!problem.empty()) {
            counters.badRequests.fetch_add(1, std::memory_order_relaxed);
            queueWrite(c, "{" + idPrefix + "\"error\":\"" + jsonEscape(problem) + "\"" +
                              protoSuffix + "}\n");
            return flushOrKeep(c);
        }

        if (!v2) {
            std::string reject;
            const int status = admissionStatus(&reject, nullptr);
            if (status != 200) {
                // Splice the id and protocol tag into the prebuilt body.
                queueWrite(c, "{" + idPrefix + reject.substr(1, reject.size() - 2) +
                                  protoSuffix + "}\n");
                return flushOrKeep(c);
            }
            admit(c, id, /*keepAlive=*/true, formula, toWireOptions(request), spec,
                  protocol, deprecated);
            return true;
        }

        // v2 session ops.  Resolve the target session on the loop thread so
        // an evicted/expired/unknown id answers with the typed session-gone
        // row instead of a worker-side failure.
        std::shared_ptr<Session> session;
        if (request.op != "open") {
            session = sessions->find(request.session);
            if (!session) {
                counters.badRequests.fetch_add(1, std::memory_order_relaxed);
                queueWrite(c, "{" + idPrefix + "\"error\":\"unknown or evicted session " +
                                  jsonEscape("\"" + request.session + "\"") +
                                  "\",\"error_kind\":\"session-gone\",\"session\":\"" +
                                  jsonEscape(request.session) + "\"" + protoSuffix +
                                  "}\n");
                return flushOrKeep(c);
            }
        }
        if (request.op != "close") { // close always admitted: cleanup must work under load
            std::string reject;
            const int status = admissionStatus(&reject, nullptr);
            if (status != 200) {
                queueWrite(c, "{" + idPrefix + reject.substr(1, reject.size() - 2) +
                                  protoSuffix + "}\n");
                return flushOrKeep(c);
            }
        }
        admitSessionOp(c, id, std::move(session), formula, toWireOptions(request),
                       protocol, deprecated);
        return true;
    }

    /// The strategy spec a request named ("" = "default"), or nullptr when
    /// the server has no such entry (for "" that means: keep the hard-wired
    /// engine behavior).
    const strategy::StrategySpec* findStrategy(const std::string& name) const
    {
        const auto it = opts.strategies.find(name.empty() ? "default" : name);
        return it == opts.strategies.end() ? nullptr : &it->second;
    }

    /// Reject requests naming a strategy the server does not have ("" is
    /// always acceptable — it falls back to hard-wired behavior).
    std::string vetStrategy(const std::string& name) const
    {
        if (name.empty() || findStrategy(name)) return {};
        return "unknown strategy \"" + name + "\"";
    }

    /// 200 when a solve may be admitted right now; otherwise the rejection
    /// status with its JSON body (and Retry-After header for HTTP).
    int admissionStatus(std::string* body, std::string* extraHeaders)
    {
        if (drainRequested.load(std::memory_order_acquire)) {
            counters.rejectedDraining.fetch_add(1, std::memory_order_relaxed);
            OBS_COUNT("service.rejected.draining", 1);
            *body = "{\"error\":\"draining\"}";
            return 503;
        }
        const std::uint64_t inflight =
            counters.pendingSolves.load(std::memory_order_relaxed);
        if (inflight >= opts.maxInflight + opts.maxQueue) {
            counters.rejectedBusy.fetch_add(1, std::memory_order_relaxed);
            OBS_COUNT("service.rejected.busy", 1);
            const auto retryMs =
                static_cast<long long>(opts.retryAfterSeconds * 1000.0 + 0.5);
            *body = "{\"error\":\"busy\",\"retry_after_ms\":" + std::to_string(retryMs) +
                    "}";
            if (extraHeaders) {
                const long long secs = (retryMs + 999) / 1000;
                *extraHeaders = "Retry-After: " + std::to_string(secs) + "\r\n";
            }
            return 429;
        }
        return 200;
    }

    void admit(Conn& c, const std::string& rowId, bool keepAlive, std::string formula,
               SolveRequestOptions ropts, EngineSpec spec,
               const std::string& protocol = {}, const std::string& deprecated = {},
               const std::string& extraHeaders = {})
    {
        if (ropts.timeoutSeconds <= 0) ropts.timeoutSeconds = opts.defaultTimeoutSeconds;
        if (ropts.rssLimitBytes == 0) ropts.rssLimitBytes = opts.defaultRssLimitBytes;

        const std::uint64_t reqId = nextReqId++;
        Pending& p = pending[reqId];
        p.connFd = c.fd;
        p.jsonl = c.jsonl;
        p.keepAlive = keepAlive;
        p.rowId = rowId;
        p.protocol = protocol;
        p.deprecated = deprecated;
        p.extraHeaders = extraHeaders;
        c.outstanding.push_back(reqId);

        counters.solvesAdmitted.fetch_add(1, std::memory_order_relaxed);
        counters.pendingSolves.fetch_add(1, std::memory_order_relaxed);
        OBS_COUNT("service.solves.admitted", 1);
        OBS_GAUGE_MAX("service.pending.max",
                      counters.pendingSolves.load(std::memory_order_relaxed));

        const CancelToken token = p.token;
        pool->submit([this, reqId, token, formula = std::move(formula), ropts, spec] {
            runSolveJob(reqId, token, formula, ropts, spec);
        });
    }

    /// Admit one v2 session op.  Ops naming a session are serialized through
    /// that session's loop-thread FIFO queue — one op per session on the
    /// pool at a time, while distinct sessions still solve concurrently.
    /// "open" has no queue to wait on (its id is allocated worker-side).
    /// "close" rides the same queue so it cannot overtake a queued solve.
    void admitSessionOp(Conn& c, const std::string& rowId, std::shared_ptr<Session> session,
                        std::string formula, SolveRequestOptions ropts,
                        const std::string& protocol, const std::string& deprecated)
    {
        if (ropts.timeoutSeconds <= 0) ropts.timeoutSeconds = opts.defaultTimeoutSeconds;
        if (ropts.rssLimitBytes == 0) ropts.rssLimitBytes = opts.defaultRssLimitBytes;

        const std::uint64_t reqId = nextReqId++;
        Pending& p = pending[reqId];
        p.connFd = c.fd;
        p.jsonl = true;
        p.keepAlive = true;
        p.rowId = rowId;
        p.sessionId = ropts.session;
        p.protocol = protocol;
        p.deprecated = deprecated;
        c.outstanding.push_back(reqId);

        counters.solvesAdmitted.fetch_add(1, std::memory_order_relaxed);
        counters.pendingSolves.fetch_add(1, std::memory_order_relaxed);
        OBS_COUNT("service.solves.admitted", 1);
        OBS_GAUGE_MAX("service.pending.max",
                      counters.pendingSolves.load(std::memory_order_relaxed));

        SessionOp op;
        op.reqId = reqId;
        op.ownerFd = c.fd;
        op.session = std::move(session);
        op.formula = std::move(formula);
        op.ropts = std::move(ropts);
        if (op.ropts.session.empty()) {
            startSessionOp(std::move(op));
            return;
        }
        SessionQueue& q = sessionQueues[op.ropts.session];
        if (q.busy) {
            q.waiting.push_back(std::move(op));
        } else {
            q.busy = true;
            startSessionOp(std::move(op));
        }
    }

    void startSessionOp(SessionOp op)
    {
        const CancelToken token = pending[op.reqId].token;
        pool->submit([this, op = std::move(op), token]() mutable {
            runSessionJob(std::move(op), token);
        });
    }

    /// Completion of a session op releases its FIFO slot: start the next
    /// waiting op, or drop the (now idle) queue entry.
    void finishSessionOp(const std::string& sessionId)
    {
        auto it = sessionQueues.find(sessionId);
        if (it == sessionQueues.end()) return;
        SessionQueue& q = it->second;
        if (!q.waiting.empty()) {
            SessionOp next = std::move(q.waiting.front());
            q.waiting.pop_front();
            startSessionOp(std::move(next));
            return;
        }
        sessionQueues.erase(it);
    }

    // ----------------------------------------------------- worker side --

    void runSolveJob(std::uint64_t reqId, const CancelToken& token,
                     const std::string& formula, const SolveRequestOptions& ropts,
                     const EngineSpec& spec)
    {
        Timer t;
        std::string engineName = spec.kind == EngineSpec::Kind::HqsBdd ? "hqs-bdd"
                                 : spec.kind == EngineSpec::Kind::Cegar ? "cegar"
                                                                        : "hqs";
        FailureInfo raceFailure;
        std::string certText; ///< serialized certificate of a certify+Sat solve

        // Request shaping: resolve the strategy spec, then the effective
        // cache mode (strategy policy, overridden by the request's
        // cache-control).  The solveOverride test hook replaces the real
        // solve, so its fabricated verdicts never enter the cache.
        const strategy::StrategySpec* strat = findStrategy(ropts.strategy);
        cache::ResultCache* rcache =
            opts.solveOverride ? nullptr : opts.resultCache.get();
        using CacheMode = strategy::CachePolicy::Mode;
        CacheMode cmode = strat ? strat->cache.mode : CacheMode::On;
        if (ropts.cacheControl == "on") cmode = CacheMode::On;
        else if (ropts.cacheControl == "off") cmode = CacheMode::Off;
        else if (ropts.cacheControl == "bypass") cmode = CacheMode::Bypass;
        // Circuit-form requests never touch the result cache: the cache key
        // is defined over the canonical CNF, and the Tseitin numbering a
        // lowering produces is an implementation detail not worth baking
        // into persisted entries.  Typed counter so the bypass is visible.
        const bool dqcir = ropts.format == "dqcir" ||
                           (ropts.format.empty() && looksLikeDqcir(formula));
        if (dqcir && rcache && cmode != CacheMode::Off)
            OBS_COUNT("cache.bypass.format", 1);
        const bool cacheRead = rcache && cmode == CacheMode::On && !dqcir;
        const bool cacheWrite = rcache && cmode != CacheMode::Off && !dqcir;

        cache::CanonicalKey ckey;
        std::uint64_t chash = 0;
        bool keyed = false;
        if (cacheRead || cacheWrite) {
            try {
                const ParsedQdimacs parsed = parseDqdimacsString(formula);
                ckey = cache::canonicalKey(parsed);
                chash = cert::formulaHash(parsed);
                keyed = true;
            } catch (const std::exception&) {
                // Unparsable body: the solve path below reports the
                // ParseError with full context; no cache involvement.
            }
        }
        if (cacheRead && keyed && !token.cancelled()) {
            try {
                if (std::optional<cache::CacheEntry> entry = rcache->lookup(ckey);
                    entry && isConclusive(entry->result)) {
                    counters.cacheHits.fetch_add(1, std::memory_order_relaxed);
                    OBS_COUNT("service.cache.hit", 1);
                    std::string body =
                        "\"result\":\"" + std::string(toString(entry->result)) + "\"";
                    body += ",\"wall_ms\":" + std::to_string(t.elapsedMilliseconds());
                    if (!entry->engine.empty())
                        body += ",\"engine\":\"" + jsonEscape(entry->engine) + "\"";
                    body += ",\"cached\":true";
                    int status = 200;
                    if (ropts.certify && entry->result == SolveResult::Sat) {
                        // Re-verify the certificate's formula-hash binding
                        // before reuse; a mismatch withholds the artifact
                        // (typed rejection) while the verdict still serves.
                        switch (cache::vetCachedCertificate(*entry, chash)) {
                            case cache::CertReuse::Served:
                                counters.cacheCertServed.fetch_add(
                                    1, std::memory_order_relaxed);
                                status = appendCertificate(
                                    body, entry->certificate,
                                    Deadline::in(ropts.timeoutSeconds));
                                break;
                            case cache::CertReuse::None:
                                body += ",\"certificate_error\":\"unavailable\"";
                                break;
                            case cache::CertReuse::HashMismatch:
                                counters.cacheCertRejects.fetch_add(
                                    1, std::memory_order_relaxed);
                                body += ",\"certificate_error\":\"cached certificate "
                                        "rejected: formula hash mismatch\"";
                                break;
                            case cache::CertReuse::MalformedArtifact:
                                counters.cacheCertRejects.fetch_add(
                                    1, std::memory_order_relaxed);
                                body += ",\"certificate_error\":\"cached certificate "
                                        "rejected: malformed artifact\"";
                                break;
                        }
                    }
                    {
                        std::lock_guard<std::mutex> lock(completionMu);
                        completions.push_back({reqId, std::move(body), status, {}});
                    }
                    wake();
                    return;
                }
            } catch (const std::exception&) {
                // A cache-layer failure (real or injected) is a miss, never
                // a failed request.
            }
        }

        // Crash containment: journal this request in the shared-memory
        // scoreboard so the supervisor can stamp a worker-crash FailureInfo
        // if this process dies mid-solve.  The site label is the engine the
        // request entered — the finest-grained span a dead process can
        // still be attributed to.
        std::size_t sbEntry = WorkerScoreboard::kJournalSlots;
        if (opts.scoreboard) {
            const char* siteLabel =
                spec.kind == EngineSpec::Kind::Portfolio ? "portfolio" : engineName.c_str();
            sbEntry = opts.scoreboard->claim(scoreboardHash(formula), siteLabel);
        }

        GuardOptions gopts;
        gopts.deadline = Deadline::in(ropts.timeoutSeconds);
        gopts.cancel = token;
        gopts.rssLimitBytes = ropts.rssLimitBytes;
        const GuardedOutcome outcome = runGuarded(gopts, [&](const Deadline& dl) {
            if (opts.solveOverride) return opts.solveOverride(formula, ropts, dl);
            const DqbfFormula f = DqbfFormula::fromParsed(
                dqcir ? lowerDqcir(parseDqcirString(formula))
                      : parseDqdimacsString(formula));
            if (spec.kind == EngineSpec::Kind::Portfolio) {
                PortfolioOptions popts;
                popts.deadline = dl;
                popts.nodeLimit = opts.nodeLimit;
                popts.maxEngines = spec.portfolioEngines;
                popts.certify = ropts.certify;
                if (strat) {
                    popts.engines =
                        PortfolioSolver::enginesFromSpec(*strat, opts.nodeLimit);
                    popts.strategyName = strat->name;
                }
                PortfolioSolver solver(popts);
                const SolveResult r = solver.solve(f);
                engineName = solver.stats().winnerName;
                if (solver.stats().failure) raceFailure = solver.stats().failure;
                certText = solver.stats().winnerCertificate;
                return r;
            }
            if (spec.kind == EngineSpec::Kind::Cegar) {
                CegarOptions copts;
                copts.deadline = dl;
                copts.ruleLimit = opts.nodeLimit;
                copts.computeSkolem = ropts.certify;
                CegarSolver solver(copts);
                const SolveResult r = solver.solve(f);
                if (ropts.certify && r == SolveResult::Sat && solver.skolemCertificate())
                    certText = cert::toCertificateString(
                        cert::extractCertificate(f, *solver.skolemCertificate()));
                return r;
            }
            HqsOptions hopts;
            hopts.deadline = dl;
            hopts.nodeLimit = opts.nodeLimit;
            if (spec.kind == EngineSpec::Kind::HqsBdd)
                hopts.backend = HqsOptions::Backend::BddElimination;
            // vetRequest rejected certify+hqs-bdd, so this never overrides
            // the BDD backend choice above.
            if (ropts.certify) hopts.computeSkolem = true;
            HqsSolver solver(hopts);
            const SolveResult r = solver.solve(f);
            if (ropts.certify && r == SolveResult::Sat && solver.skolemCertificate())
                certText = cert::toCertificateString(
                    cert::extractCertificate(f, *solver.skolemCertificate()));
            return r;
        });

        const double wallMs = t.elapsedMilliseconds();
        OBS_COUNT("service.solves.completed", 1);
        OBS_OBSERVE("service.solve_latency_us", wallMs * 1000.0);
#if HQS_OBS_ENABLED
        obs::currentRegistry().add(
            obs::metric(std::string("service.result.") + toString(outcome.result),
                        obs::MetricKind::Counter),
            1);
#endif

        const FailureInfo& failure = outcome.failure ? outcome.failure : raceFailure;
        std::string body = "\"result\":\"" + toString(outcome.result) + "\"";
        body += ",\"wall_ms\":" + std::to_string(wallMs);
        if (!engineName.empty()) body += ",\"engine\":\"" + jsonEscape(engineName) + "\"";
        if (failure) {
            body += ",\"failure\":{\"kind\":\"" + std::string(toString(failure.kind)) +
                    "\",\"site\":\"" + jsonEscape(failure.site) + "\",\"what\":\"" +
                    jsonEscape(failure.what) + "\"}";
        }
        int status = 200;
        if (ropts.certify && outcome.result == SolveResult::Sat)
            status = appendCertificate(body, certText, gopts.deadline);
        if (cacheWrite && keyed && isConclusive(outcome.result)) {
            try {
                cache::CacheEntry entry;
                entry.result = outcome.result;
                entry.engine = engineName;
                entry.solveMilliseconds = wallMs;
                entry.certFormulaHash = chash;
                entry.certificate = certText;
                rcache->store(ckey, entry);
                counters.cacheStores.fetch_add(1, std::memory_order_relaxed);
            } catch (const std::exception&) {
                // A cache write failure never taints the verdict.
            }
        }
        if (opts.scoreboard) opts.scoreboard->release(sbEntry);
        {
            std::lock_guard<std::mutex> lock(completionMu);
            completions.push_back({reqId, std::move(body), status, {}});
        }
        wake();
    }

    /// One v2 session op on the pool.  The per-session FIFO guarantees at
    /// most one op per session runs at a time, so Session methods need no
    /// locking of their own.
    void runSessionJob(SessionOp op, const CancelToken& token)
    {
        Timer t;
        if (op.ropts.op == "open") {
            std::string err;
            const std::string sid =
                sessions->open(op.formula, op.ropts.format,
                               static_cast<std::uint64_t>(op.ownerFd), &err);
            Completion done;
            done.reqId = op.reqId;
            if (sid.empty()) {
                counters.badRequests.fetch_add(1, std::memory_order_relaxed);
                done.bodyFragment = "\"error\":\"open failed: " + jsonEscape(err) + "\"";
            } else {
                done.bodyFragment = "\"session\":\"" + jsonEscape(sid) + "\"";
                if (std::shared_ptr<Session> s = sessions->find(sid)) {
                    done.bodyFragment +=
                        ",\"vars\":" + std::to_string(s->baseVars()) +
                        ",\"clauses\":" + std::to_string(s->baseClauses());
                }
                done.bodyFragment +=
                    ",\"wall_ms\":" + std::to_string(t.elapsedMilliseconds());
                done.openedSession = sid;
            }
            {
                std::lock_guard<std::mutex> lock(completionMu);
                completions.push_back(std::move(done));
            }
            wake();
            return;
        }
        if (op.ropts.op == "close") {
            const bool closed = sessions->close(op.ropts.session);
            std::string body = "\"session\":\"" + jsonEscape(op.ropts.session) +
                               "\",\"closed\":" + (closed ? "true" : "false") +
                               ",\"wall_ms\":" + std::to_string(t.elapsedMilliseconds());
            {
                std::lock_guard<std::mutex> lock(completionMu);
                completions.push_back({op.reqId, std::move(body), 200, {}});
            }
            wake();
            return;
        }
        runSessionSolve(std::move(op), token);
    }

    /// The delta/solve ops: apply the delta (transactionally, inside the
    /// guard so an injected `session-delta` fault surfaces as a contained
    /// FailureInfo), solve the effective formula incrementally, and report
    /// the reuse accounting.  Client mistakes (SessionError) become a typed
    /// `delta-invalid` row, never a guard failure.
    void runSessionSolve(SessionOp op, const CancelToken& token)
    {
        Timer t;
        GuardOptions gopts;
        gopts.deadline = Deadline::in(op.ropts.timeoutSeconds);
        gopts.cancel = token;
        gopts.rssLimitBytes = op.ropts.rssLimitBytes;
        SessionSolveOutcome outcome;
        std::string typedError;
        const GuardedOutcome guarded = runGuarded(gopts, [&](const Deadline& dl) {
            try {
                if (op.ropts.op == "delta") {
                    SessionDelta delta;
                    delta.addGroup = op.ropts.addGroup;
                    delta.addClauses = op.ropts.deltaClauses;
                    delta.retractGroup = op.ropts.retractGroup;
                    delta.gate = op.ropts.gate;
                    op.session->applyDelta(delta);
                }
                SessionSolveOptions sopts;
                sopts.deadline = dl;
                sopts.nodeLimit = opts.nodeLimit;
                sopts.certify = op.ropts.certify;
                outcome = op.session->solve(sopts, op.ropts.assume);
            } catch (const SessionError& e) {
                typedError = e.what();
                return SolveResult::Unknown;
            }
            return outcome.result;
        });

        const double wallMs = t.elapsedMilliseconds();
        OBS_COUNT("service.solves.completed", 1);
        OBS_OBSERVE("service.solve_latency_us", wallMs * 1000.0);

        std::string body;
        int status = 200;
        if (!typedError.empty()) {
            counters.badRequests.fetch_add(1, std::memory_order_relaxed);
            body = "\"error\":\"" + jsonEscape(typedError) +
                   "\",\"error_kind\":\"delta-invalid\",\"session\":\"" +
                   jsonEscape(op.ropts.session) + "\"";
        } else {
            body = "\"result\":\"" + toString(guarded.result) + "\"";
            body += ",\"wall_ms\":" + std::to_string(wallMs);
            body += ",\"engine\":\"hqs\"";
            body += ",\"session\":\"" + jsonEscape(op.ropts.session) + "\"";
            body += ",\"delta\":{\"components\":" + std::to_string(outcome.components) +
                    ",\"reused\":" + std::to_string(outcome.reusedComponents) +
                    ",\"cone_nodes_saved\":" + std::to_string(outcome.coneNodesSaved) +
                    "}";
            if (guarded.failure) {
                body += ",\"failure\":{\"kind\":\"" +
                        std::string(toString(guarded.failure.kind)) + "\",\"site\":\"" +
                        jsonEscape(guarded.failure.site) + "\",\"what\":\"" +
                        jsonEscape(guarded.failure.what) + "\"}";
            }
            if (op.ropts.certify && guarded.result == SolveResult::Sat)
                status = appendCertificate(body, outcome.certificate, gopts.deadline);
            // Session solves feed the shared content-addressed cache under
            // the canonical key of the *effective* formula — a later cold
            // solve of the same text hits.  Assumption-carrying solves are
            // request-local and skip it (Session counted cache.bypass.session).
            if (!outcome.usedAssumptions && isConclusive(guarded.result) &&
                opts.resultCache && !opts.solveOverride &&
                op.ropts.cacheControl != "off") {
                try {
                    const ParsedQdimacs parsed =
                        parseDqdimacsString(outcome.effectiveText);
                    cache::CacheEntry entry;
                    entry.result = guarded.result;
                    entry.engine = "hqs";
                    entry.solveMilliseconds = wallMs;
                    entry.certFormulaHash = cert::formulaHash(parsed);
                    entry.certificate = outcome.certificate;
                    opts.resultCache->store(cache::canonicalKey(parsed), entry);
                    counters.cacheStores.fetch_add(1, std::memory_order_relaxed);
                } catch (const std::exception&) {
                    // A cache write failure never taints the verdict.
                }
            }
        }
        {
            std::lock_guard<std::mutex> lock(completionMu);
            completions.push_back({op.reqId, std::move(body), status, {}});
        }
        wake();
    }

    /// Attach the certificate of a certify+Sat solve to @p body: the
    /// size-capped `certificate` object (optionally self-checked through the
    /// independent parser/checker first), or a `certificate_error` field.
    /// Returns the HTTP status for the response (JSONL rows ignore it).
    int appendCertificate(std::string& body, const std::string& certText,
                          const Deadline& deadline)
    {
        if (certText.empty()) {
            // A portfolio race can be won by an engine that cannot certify.
            body += ",\"certificate_error\":\"unavailable\"";
            return 200;
        }
        if (certText.size() > opts.maxCertificateBytes) {
            counters.certTooLarge.fetch_add(1, std::memory_order_relaxed);
            OBS_COUNT("service.cert.too_large", 1);
            body += ",\"certificate_error\":\"certificate size " +
                    std::to_string(certText.size()) + " exceeds cap " +
                    std::to_string(opts.maxCertificateBytes) + "\"";
            return 413;
        }
        std::string selfCheck;
        if (opts.certSelfCheck) {
            cert::Certificate parsed;
            std::string detail;
            cert::CheckStatus st = cert::parseCertificateString(certText, parsed, detail);
            if (st == cert::CheckStatus::Ok) st = cert::checkCertificate(parsed, deadline).status;
            selfCheck = cert::toString(st);
            if (st != cert::CheckStatus::Ok) {
                // Never ship a certificate the server itself could not
                // validate; the verdict still goes out, bytes withheld.
                counters.certSelfCheckFails.fetch_add(1, std::memory_order_relaxed);
                OBS_COUNT("cert.selfcheck_fail", 1);
                body += ",\"certificate\":{\"self_check\":\"" + selfCheck +
                        "\",\"error\":\"self-check failed; certificate withheld\"}";
                return 200;
            }
        }
        counters.certificatesIssued.fetch_add(1, std::memory_order_relaxed);
        OBS_COUNT("service.cert.issued", 1);
        body += ",\"certificate\":{\"size_bytes\":" + std::to_string(certText.size());
        if (!selfCheck.empty()) body += ",\"self_check\":\"" + selfCheck + "\"";
        body += ",\"bytes\":\"" + jsonEscape(certText) + "\"}";
        return 200;
    }

    // -------------------------------------------------- loop: responses --

    void processCompletions()
    {
        std::vector<Completion> batch;
        {
            std::lock_guard<std::mutex> lock(completionMu);
            batch.swap(completions);
        }
        for (Completion& done : batch) {
            auto it = pending.find(done.reqId);
            if (it == pending.end()) continue;
            Pending p = std::move(it->second);
            pending.erase(it);
            counters.pendingSolves.fetch_sub(1, std::memory_order_relaxed);
            counters.solvesCompleted.fetch_add(1, std::memory_order_relaxed);
            // Release the per-session FIFO slot whatever happened to the
            // connection — a queued op behind this one must still run.
            if (!p.sessionId.empty()) finishSessionOp(p.sessionId);

            auto cit = p.connFd < 0 ? conns.end() : conns.find(p.connFd);
            if (cit == conns.end()) {
                // Client gone; verdict dropped — and a session opened for a
                // gone client is closed again (no one ever learned its id).
                if (!done.openedSession.empty()) sessions->close(done.openedSession);
                continue;
            }
            Conn& c = cit->second;
            std::erase(c.outstanding, done.reqId);
            if (p.jsonl) {
                std::string row = "{";
                if (!p.rowId.empty()) row += "\"id\":\"" + jsonEscape(p.rowId) + "\",";
                row += done.bodyFragment;
                if (!p.deprecated.empty()) row += "," + p.deprecated;
                if (!p.protocol.empty()) row += ",\"protocol\":\"" + p.protocol + "\"";
                row += "}\n";
                queueWrite(c, row);
            } else {
                queueWrite(c, httpResponse(done.status, "application/json",
                                           "{" + done.bodyFragment + "}", p.keepAlive,
                                           p.extraHeaders));
                if (!p.keepAlive) c.closeAfterFlush = true;
            }
            if (flushOrKeep(c) && !c.jsonl) {
                // The response unblocked request ordering; parse whatever
                // the client pipelined behind it.
                auto alive = conns.find(p.connFd);
                if (alive != conns.end() && !alive->second.in.empty())
                    parseLoop(alive->second);
            }
        }
    }

    // ---------------------------------------------------- loop: writing --

    void queueWrite(Conn& c, std::string data)
    {
        if (c.out.empty())
            c.out = std::move(data);
        else
            c.out += data;
    }

    /// Flush as much of @p c's output as the socket accepts.  Returns false
    /// when the connection was destroyed (peer reset, or close-after-flush
    /// completed).
    bool flushOrKeep(Conn& c) { return flushOut(c); }

    bool flushOut(Conn& c)
    {
        while (!c.out.empty()) {
            // MSG_NOSIGNAL: a dead peer yields EPIPE instead of SIGPIPE —
            // writes to gone clients are disconnects, never aborts.
            const ssize_t n = ::send(c.fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
            if (n > 0) {
                c.out.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
                if (!c.wantWrite) {
                    c.wantWrite = true;
                    epollMod(c.fd, EPOLLIN | EPOLLRDHUP | EPOLLOUT);
                }
                return true;
            }
            if (n < 0 && errno == EINTR) continue;
            // EPIPE / ECONNRESET / short-circuit: the peer is gone.
            auto it = conns.find(c.fd);
            if (it != conns.end()) closeConn(it->second, /*peerClosed=*/true);
            return false;
        }
        if (c.wantWrite) {
            c.wantWrite = false;
            epollMod(c.fd, EPOLLIN | EPOLLRDHUP);
        }
        if (c.closeAfterFlush) {
            auto it = conns.find(c.fd);
            if (it != conns.end()) closeConn(it->second, /*peerClosed=*/false);
            return false;
        }
        return true;
    }

    // ------------------------------------------------------------ misc --

    std::string statsJson()
    {
        std::ostringstream os;
        obs::JsonWriter w(os);
        w.beginObject();
        w.key("draining").value(drainRequested.load(std::memory_order_acquire));
        w.key("uptime_ms").value(uptime.elapsedMilliseconds());
        w.key("pending_solves")
            .value(static_cast<std::int64_t>(
                counters.pendingSolves.load(std::memory_order_relaxed)));
        w.key("open_connections")
            .value(static_cast<std::int64_t>(
                counters.openConnections.load(std::memory_order_relaxed)));
        w.key("counters").beginObject();
        const auto put = [&](const char* name, const std::atomic<std::uint64_t>& v) {
            w.key(name).value(static_cast<std::int64_t>(v.load(std::memory_order_relaxed)));
        };
        put("connections_accepted", counters.connectionsAccepted);
        put("requests", counters.requests);
        put("solves_admitted", counters.solvesAdmitted);
        put("solves_completed", counters.solvesCompleted);
        put("rejected_busy", counters.rejectedBusy);
        put("rejected_draining", counters.rejectedDraining);
        put("bad_requests", counters.badRequests);
        put("disconnects", counters.disconnects);
        put("disconnect_cancels", counters.disconnectCancels);
        put("certificates_issued", counters.certificatesIssued);
        put("cert_selfcheck_fails", counters.certSelfCheckFails);
        put("cert_too_large", counters.certTooLarge);
        put("cache_hits", counters.cacheHits);
        put("cache_stores", counters.cacheStores);
        put("cache_cert_served", counters.cacheCertServed);
        put("cache_cert_rejects", counters.cacheCertRejects);
        w.endObject();
        if (opts.resultCache) {
            const cache::CacheStats cs = opts.resultCache->stats();
            w.key("cache").beginObject();
            w.key("entries")
                .value(static_cast<std::int64_t>(opts.resultCache->entryCount()));
            w.key("bytes").value(static_cast<std::int64_t>(cs.bytes));
            w.key("hits").value(static_cast<std::int64_t>(cs.hits));
            w.key("misses").value(static_cast<std::int64_t>(cs.misses));
            w.key("evictions").value(static_cast<std::int64_t>(cs.evictions));
            w.key("stores").value(static_cast<std::int64_t>(cs.stores));
            w.key("persist_hits").value(static_cast<std::int64_t>(cs.persistHits));
            w.key("persist_errors").value(static_cast<std::int64_t>(cs.persistErrors));
            w.endObject();
        }
        w.key("limits").beginObject();
        w.key("max_inflight").value(static_cast<std::int64_t>(opts.maxInflight));
        w.key("max_queue").value(static_cast<std::int64_t>(opts.maxQueue));
        w.key("max_certificate_bytes")
            .value(static_cast<std::int64_t>(opts.maxCertificateBytes));
        w.endObject();
        w.endObject();
        return os.str();
    }

    void wake()
    {
        const std::uint64_t one = 1;
        [[maybe_unused]] const ssize_t n = ::write(wakeFd, &one, sizeof one);
    }

    ~Impl()
    {
        if (wakeFd >= 0) ::close(wakeFd);
        if (epollFd >= 0) ::close(epollFd);
    }
};

SolverService::SolverService(ServiceOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{
}

SolverService::~SolverService()
{
    installSignalDrain(nullptr);
    stop();
}

bool SolverService::start(std::string* error)
{
    std::string err;
    if (!impl_->start(&err)) {
        if (error) *error = err;
        // Release any fds a partial start left behind.
        if (impl_->httpListenFd >= 0) ::close(impl_->httpListenFd);
        if (impl_->jsonlListenFd >= 0) ::close(impl_->jsonlListenFd);
        if (impl_->udsListenFd >= 0) ::close(impl_->udsListenFd);
        impl_->httpListenFd = impl_->jsonlListenFd = impl_->udsListenFd = -1;
        return false;
    }
    return true;
}

std::uint16_t SolverService::httpPort() const { return impl_->boundHttpPort; }
std::uint16_t SolverService::jsonlPort() const { return impl_->boundJsonlPort; }

void SolverService::beginDrain()
{
    impl_->drainRequested.store(true, std::memory_order_release);
    impl_->wake();
}

bool SolverService::waitForDrained(double timeoutSeconds)
{
    std::unique_lock<std::mutex> lock(impl_->drainMu);
    if (timeoutSeconds <= 0) {
        impl_->drainCv.wait(lock, [this] { return impl_->drained; });
        return true;
    }
    return impl_->drainCv.wait_for(lock, std::chrono::duration<double>(timeoutSeconds),
                                   [this] { return impl_->drained; });
}

void SolverService::stop()
{
    if (!impl_->started) return;
    impl_->drainRequested.store(true, std::memory_order_release);
    impl_->hardStopRequested.store(true, std::memory_order_release);
    impl_->wake();
    if (impl_->loopThread.joinable()) impl_->loopThread.join();
    impl_->pool.reset(); // drains any still-queued jobs
    impl_->started = false;
}

bool SolverService::draining() const
{
    return impl_->drainRequested.load(std::memory_order_acquire);
}

const ServiceCounters& SolverService::counters() const { return impl_->counters; }

void SolverService::installSignalDrain(SolverService* s)
{
    if (!s) {
        gSignalWakeFd.store(-1, std::memory_order_relaxed);
        return;
    }
    s->impl_->signalBaseline.store(gSignalCount.load(std::memory_order_relaxed),
                                   std::memory_order_relaxed);
    s->impl_->drainOnSignal.store(true, std::memory_order_relaxed);
    gSignalWakeFd.store(s->impl_->wakeFd, std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = serviceSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

} // namespace hqs::service
