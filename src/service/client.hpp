// Blocking TCP client for the solver service: the counterpart of the epoll
// server used by the dqbf_client load generator, bench_service, and the
// loopback tests.  One connection per object, synchronous send/receive —
// concurrency in the callers comes from running many clients on many
// threads, which is exactly the load shape the server's admission control
// is tested against.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/service/http.hpp"

namespace hqs::service {

/// Ignore SIGPIPE process-wide.  Every service binary calls this first so a
/// peer closing its socket mid-write surfaces as an EPIPE error return
/// (handled as a disconnect) instead of killing the process.
void ignoreSigpipe();

class BlockingClient {
public:
    BlockingClient() = default;
    ~BlockingClient() { close(); }

    BlockingClient(BlockingClient&& other) noexcept;
    BlockingClient& operator=(BlockingClient&& other) noexcept;
    BlockingClient(const BlockingClient&) = delete;
    BlockingClient& operator=(const BlockingClient&) = delete;

    /// Connect to @p host : @p port.  False (with @p error filled) on failure.
    bool connect(const std::string& host, std::uint16_t port,
                 std::string* error = nullptr);

    /// Connect to a Unix-domain stream socket at @p path (the per-worker
    /// metrics channel the supervisor scrapes).  @p timeoutSeconds > 0 arms
    /// SO_RCVTIMEO so a wedged worker cannot stall the caller forever.
    bool connectUnix(const std::string& path, double timeoutSeconds = 0,
                     std::string* error = nullptr);

    bool connected() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /// Send all of @p data.  False when the peer is gone (EPIPE/reset) — the
    /// connection is closed, never a signal or an abort.
    bool sendAll(std::string_view data);

    /// Read one full HTTP response.  False on EOF, error, or malformed
    /// framing; pipelined responses queue in the internal buffer.
    bool readResponse(HttpResponseMsg& out);

    /// Read one newline-terminated row (newline stripped).  False on EOF or
    /// error with no complete line buffered.
    bool readLine(std::string& out);

    /// Half-close the write side (signals end-of-requests in JSONL mode).
    void shutdownWrite();

    void close();

private:
    int fd_ = -1;
    std::string buf_;
    HttpParser parser_;
};

// ------------------------------------------------------------------ retry --
// Shared by dqbf_client and the soak harness: bounded retry with capped
// exponential backoff + jitter on transport failures and 429/503 rejections.

/// Retry-After seconds advertised by a response: the Retry-After header
/// when present, else the JSON body's retry_after_ms field, else
/// @p fallbackSeconds.  Returns a non-negative value.
double parseRetryAfterSeconds(const std::string& retryAfterHeader,
                              const std::string& body, double fallbackSeconds);

/// Backoff before retry @p attempt (0-based): min(base * 2^attempt, cap),
/// never below @p serverHintSeconds (the Retry-After the server asked for),
/// with ±25% deterministic jitter derived from @p jitterSeed so a thundering
/// herd of retrying clients decorrelates.
double retryDelaySeconds(int attempt, double baseSeconds, double capSeconds,
                         double serverHintSeconds, std::uint64_t jitterSeed);

} // namespace hqs::service
