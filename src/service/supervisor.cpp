#include "src/service/supervisor.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/base/timer.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/report.hpp"
#include "src/service/client.hpp"
#include "src/service/scoreboard.hpp"
#include "src/service/worker.hpp"

namespace hqs::service {

const char* toString(SlotStatus::State s)
{
    switch (s) {
        case SlotStatus::State::Starting: return "starting";
        case SlotStatus::State::Up: return "up";
        case SlotStatus::State::Backoff: return "backoff";
        case SlotStatus::State::Degraded: return "degraded";
        case SlotStatus::State::Exited: return "exited";
    }
    return "invalid";
}

namespace {

/// Self-pipe signal hook, mirroring the service's eventfd pattern: the
/// handler only bumps a counter and writes one byte.
std::atomic<int> gSupervisorSignalFd{-1};
std::atomic<unsigned> gSupervisorSignalCount{0};

extern "C" void supervisorSignalHandler(int)
{
    gSupervisorSignalCount.fetch_add(1, std::memory_order_relaxed);
    const int fd = gSupervisorSignalFd.load(std::memory_order_relaxed);
    if (fd >= 0) {
        const char byte = 's';
        [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
    }
}

/// One async-signal-safe-ish stderr line (single write of a stack buffer).
void supervisorLog(const char* fmt, ...)
#ifdef __GNUC__
    __attribute__((format(printf, 1, 2)))
#endif
    ;

void supervisorLog(const char* fmt, ...)
{
    char line[512];
    va_list ap;
    va_start(ap, fmt);
    int n = std::vsnprintf(line, sizeof line - 1, fmt, ap);
    va_end(ap);
    if (n <= 0) return;
    if (n > static_cast<int>(sizeof line) - 2) n = sizeof line - 2;
    line[n] = '\n';
    [[maybe_unused]] const ssize_t w =
        ::write(STDERR_FILENO, line, static_cast<std::size_t>(n) + 1);
}

std::string describeDeath(int status, bool oomKill, std::uint64_t rssBytes)
{
    std::string what;
    if (WIFEXITED(status))
        what = "worker exited with status " + std::to_string(WEXITSTATUS(status));
    else if (WIFSIGNALED(status))
        what = std::string("worker killed by signal ") +
               std::to_string(WTERMSIG(status)) + " (" +
               strsignal(WTERMSIG(status)) + ")";
    else
        what = "worker died (status " + std::to_string(status) + ")";
    if (oomKill)
        what += "; likely OOM kill (last RSS " + std::to_string(rssBytes >> 20) + " MiB)";
    return what;
}

} // namespace

struct Supervisor::Impl {
    explicit Impl(SupervisorOptions o) : opts(std::move(o))
    {
        if (opts.workers < 1) opts.workers = 1;
    }

    // ------------------------------------------------------------ state --

    SupervisorOptions opts;
    Timer uptime;

    struct Slot {
        int index = 0;
        pid_t pid = -1;
        SlotStatus::State state = SlotStatus::State::Backoff;
        int readyFd = -1; ///< read end of the readiness pipe (-1 once up)
        std::uint64_t respawns = 0;
        std::uint64_t crashes = 0;
        std::uint64_t oomKills = 0;
        int lastExitStatus = 0;
        std::uint64_t lastRssBytes = 0;
        double backoffSeconds = 0;
        double nextSpawnAt = 0;  ///< uptime seconds; Backoff only
        double upSince = 0;
        double degradedUntil = 0;
        std::deque<double> deathTimes; ///< breaker window
    };

    mutable std::mutex mu;
    std::vector<Slot> slots;                  // under mu
    std::vector<WorkerCrashReport> reports;   // under mu
    std::uint64_t respawnsTotal = 0;          // under mu
    std::uint64_t crashesTotal = 0;           // under mu
    std::uint64_t oomKillsTotal = 0;          // under mu

    WorkerScoreboard* boards = nullptr;
    std::size_t boardsBytes = 0;

    int selfPipe[2] = {-1, -1};
    int httpReserveFd = -1;   ///< SO_REUSEPORT bind, never listened: holds the port
    int jsonlReserveFd = -1;
    int adminListenFd = -1;
    int responderHttpFd = -1; ///< master's own 503 listener, degraded/drain only
    int responderJsonlFd = -1;
    std::uint16_t boundHttpPort = 0;
    std::uint16_t boundJsonlPort = 0;
    std::uint16_t boundAdminPort = 0;
    std::string runDir;
    bool madeRunDir = false;

    struct Conn {
        int fd = -1;
        bool responder = false; ///< canned-503 conn (vs admin HTTP)
        bool jsonl = false;     ///< responder flavor
        bool shutdownSent = false;
        double deadline = 0; ///< uptime seconds; responder conns only
        std::string in;
        std::string out;
        HttpParser parser{16 * 1024, 1 << 20};
    };
    std::unordered_map<int, Conn> conns;

    std::thread loopThread;
    bool started = false;
    std::atomic<bool> drainFlag{false};
    std::atomic<bool> escalateFlag{false};
    bool drainPropagated = false; ///< loop-thread-only
    /// gSupervisorSignalCount at installSignalDrain() time — signals from
    /// before this instance took over the handler must not count.
    std::atomic<unsigned> signalBaseline{0};
    unsigned signalsSeen = 0; ///< loop-thread-only: consumed past the baseline

    std::mutex exitMu;
    std::condition_variable exitCv;
    bool exited = false;

    // ------------------------------------------------------------ setup --

    double now() const { return uptime.elapsedSeconds(); }

    int reservePort(std::uint16_t port, std::uint16_t* bound, std::string* error)
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
        if (fd < 0) {
            if (error) *error = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        if (::inet_pton(AF_INET, opts.service.bindAddress.c_str(), &addr.sin_addr) != 1) {
            if (error) *error = "bad bind address: " + opts.service.bindAddress;
            ::close(fd);
            return -1;
        }
        // Bind WITHOUT listen: a non-listening SO_REUSEPORT member never
        // receives connections, so this socket only pins the port number
        // (and the group) for the workers across respawns.
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
            if (error) *error = std::string("bind: ") + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        socklen_t len = sizeof addr;
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
        *bound = ntohs(addr.sin_port);
        return fd;
    }

    /// A listening TCP socket on @p port (SO_REUSEPORT iff @p reusePort) —
    /// used for the admin listener and the degraded responders.
    int listenTcp(std::uint16_t port, bool reusePort, std::uint16_t* bound,
                  std::string* error)
    {
        const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
        if (fd < 0) {
            if (error) *error = std::string("socket: ") + std::strerror(errno);
            return -1;
        }
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        if (reusePort) ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        if (::inet_pton(AF_INET, opts.service.bindAddress.c_str(), &addr.sin_addr) != 1) {
            if (error) *error = "bad bind address: " + opts.service.bindAddress;
            ::close(fd);
            return -1;
        }
        if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
            ::listen(fd, 64) != 0) {
            if (error) *error = std::string("bind/listen: ") + std::strerror(errno);
            ::close(fd);
            return -1;
        }
        if (bound) {
            socklen_t len = sizeof addr;
            ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
            *bound = ntohs(addr.sin_port);
        }
        return fd;
    }

    std::string udsPath(int slot) const
    {
        return runDir + "/worker-" + std::to_string(slot) + ".sock";
    }

    ServiceOptions workerOptions(int slot) const
    {
        ServiceOptions o = opts.service;
        o.httpPort = boundHttpPort;
        o.jsonlPort = boundJsonlPort;
        o.reusePort = true;
        o.metricsUdsPath = udsPath(slot);
        o.scoreboard = boards + slot;
        return o;
    }

    bool start(std::string* error)
    {
        if (::pipe2(selfPipe, O_CLOEXEC | O_NONBLOCK) != 0) {
            if (error) *error = std::string("pipe2: ") + std::strerror(errno);
            return false;
        }
        httpReserveFd = reservePort(opts.service.httpPort, &boundHttpPort, error);
        if (httpReserveFd < 0) return false;
        if (opts.service.enableJsonl) {
            jsonlReserveFd = reservePort(opts.service.jsonlPort, &boundJsonlPort, error);
            if (jsonlReserveFd < 0) return false;
        }
        adminListenFd = listenTcp(opts.adminPort, false, &boundAdminPort, error);
        if (adminListenFd < 0) return false;

        runDir = opts.runDir;
        if (runDir.empty())
            runDir = "/tmp/hqs-serve-" + std::to_string(::getpid());
        if (::mkdir(runDir.c_str(), 0700) != 0 && errno != EEXIST) {
            if (error) *error = "mkdir " + runDir + ": " + std::strerror(errno);
            return false;
        }
        madeRunDir = true;

        boardsBytes = sizeof(WorkerScoreboard) * static_cast<std::size_t>(opts.workers);
        void* mem = ::mmap(nullptr, boardsBytes, PROT_READ | PROT_WRITE,
                           MAP_SHARED | MAP_ANONYMOUS, -1, 0);
        if (mem == MAP_FAILED) {
            if (error) *error = std::string("mmap scoreboard: ") + std::strerror(errno);
            return false;
        }
        boards = new (mem) WorkerScoreboard[static_cast<std::size_t>(opts.workers)];

        slots.resize(static_cast<std::size_t>(opts.workers));
        const double t0 = now();
        for (int i = 0; i < opts.workers; ++i) {
            Slot& s = slots[static_cast<std::size_t>(i)];
            s.index = i;
            s.backoffSeconds = opts.backoffInitialSeconds;
            s.nextSpawnAt = t0;
        }
        // Fork the initial fleet before the supervision thread exists: the
        // master is still single-threaded here, the safest point to fork.
        {
            std::lock_guard<std::mutex> lock(mu);
            for (Slot& s : slots)
                if (!spawnLocked(s, /*isRespawn=*/false, error)) return false;
        }
        loopThread = std::thread([this] { runLoop(); });
        started = true;
        return true;
    }

    /// Fork one worker for @p s.  Caller holds mu.
    bool spawnLocked(Slot& s, bool isRespawn, std::string* error)
    {
        boards[s.index].reset();
        // Everything the child needs is built before fork so the child's
        // pre-service work is minimal.
        WorkerConfig wc;
        wc.service = workerOptions(s.index);
        wc.slot = s.index;
        wc.addressSpaceLimitBytes = opts.workerAddressSpaceLimitBytes;
        int pfd[2];
        if (::pipe2(pfd, O_CLOEXEC | O_NONBLOCK) != 0) {
            if (error) *error = std::string("pipe2: ") + std::strerror(errno);
            return false;
        }
        std::vector<int> childCloses = {selfPipe[0], selfPipe[1], adminListenFd,
                                        responderHttpFd, responderJsonlFd, pfd[0]};
        for (const auto& [fd, c] : conns) childCloses.push_back(fd);
        for (const Slot& other : slots)
            if (other.readyFd >= 0) childCloses.push_back(other.readyFd);

        const pid_t pid = ::fork();
        if (pid == 0) {
            // --- child ---
            for (const int fd : childCloses)
                if (fd >= 0) ::close(fd);
            // Default dispositions until the worker's own drain hook is in:
            // the inherited master handler would write the master self-pipe.
            struct sigaction dfl{};
            dfl.sa_handler = SIG_DFL;
            sigemptyset(&dfl.sa_mask);
            ::sigaction(SIGTERM, &dfl, nullptr);
            ::sigaction(SIGINT, &dfl, nullptr);
            wc.readyFd = pfd[1];
            runWorker(wc); // noreturn
        }
        if (pid < 0) {
            if (error) *error = std::string("fork: ") + std::strerror(errno);
            ::close(pfd[0]);
            ::close(pfd[1]);
            return false;
        }
        ::close(pfd[1]);
        s.pid = pid;
        s.readyFd = pfd[0];
        s.state = SlotStatus::State::Starting;
        s.upSince = now();
        if (isRespawn) {
            ++s.respawns;
            ++respawnsTotal;
            OBS_COUNT("service.worker.respawns", 1);
            supervisorLog("hqs-serve: respawned worker slot %d as pid %d", s.index,
                          static_cast<int>(pid));
        }
        return true;
    }

    // ------------------------------------------------------------- loop --

    void runLoop()
    {
        bool running = true;
        while (running) {
            pollOnce(50);
            handleSignals();
            bool allExited;
            {
                std::lock_guard<std::mutex> lock(mu);
                propagateDrainLocked();
                reapAndManageLocked();
                allExited = true;
                for (const Slot& s : slots)
                    if (s.state != SlotStatus::State::Exited) allExited = false;
                updateResponderLocked();
            }
            expireResponderConns();
            running = !(allExited &&
                        (drainFlag.load(std::memory_order_acquire) ||
                         escalateFlag.load(std::memory_order_acquire)));
        }
        shutdownLoop();
    }

    void pollOnce(int timeoutMs)
    {
        std::vector<pollfd> pfds;
        std::vector<int> readyFds; ///< parallel: readiness fds polled this round
        pfds.push_back({selfPipe[0], POLLIN, 0});
        if (adminListenFd >= 0) pfds.push_back({adminListenFd, POLLIN, 0});
        if (responderHttpFd >= 0) pfds.push_back({responderHttpFd, POLLIN, 0});
        if (responderJsonlFd >= 0) pfds.push_back({responderJsonlFd, POLLIN, 0});
        for (const auto& [fd, c] : conns) {
            short ev = POLLIN;
            if (!c.out.empty()) ev |= POLLOUT;
            pfds.push_back({fd, ev, 0});
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            for (const Slot& s : slots)
                if (s.readyFd >= 0) pfds.push_back({s.readyFd, POLLIN, 0});
        }
        const int n = ::poll(pfds.data(), pfds.size(), timeoutMs);
        if (n <= 0) return;
        for (const pollfd& p : pfds) {
            if (p.revents == 0) continue;
            if (p.fd == selfPipe[0]) {
                char buf[64];
                while (::read(selfPipe[0], buf, sizeof buf) > 0) {
                }
            } else if (p.fd == adminListenFd) {
                acceptConns(adminListenFd, /*responder=*/false, /*jsonl=*/false);
            } else if (p.fd == responderHttpFd) {
                acceptConns(responderHttpFd, /*responder=*/true, /*jsonl=*/false);
            } else if (p.fd == responderJsonlFd) {
                acceptConns(responderJsonlFd, /*responder=*/true, /*jsonl=*/true);
            } else if (conns.count(p.fd)) {
                handleConnEvent(p.fd, p.revents);
            }
            // Readiness fds are handled by reapAndManageLocked's
            // nonblocking reads; poll() only wakes the loop for them.
        }
    }

    void handleSignals()
    {
        const unsigned seen = gSupervisorSignalCount.load(std::memory_order_relaxed) -
                              signalBaseline.load(std::memory_order_relaxed);
        if (seen == signalsSeen) return;
        const unsigned delta = seen - signalsSeen;
        signalsSeen = seen;
        if (!drainFlag.load(std::memory_order_acquire)) {
            drainFlag.store(true, std::memory_order_release);
            if (delta > 1) escalateFlag.store(true, std::memory_order_release);
        } else {
            escalateFlag.store(true, std::memory_order_release);
        }
    }

    /// Forward drain/escalate to the children.  Caller holds mu.
    void propagateDrainLocked()
    {
        const bool draining = drainFlag.load(std::memory_order_acquire);
        const bool escalate = escalateFlag.load(std::memory_order_acquire);
        if (draining && !drainPropagated) {
            drainPropagated = true;
            supervisorLog("hqs-serve: drain requested; signalling %d workers",
                          static_cast<int>(slots.size()));
            for (Slot& s : slots)
                if (s.pid > 0 && (s.state == SlotStatus::State::Starting ||
                                  s.state == SlotStatus::State::Up))
                    ::kill(s.pid, SIGTERM);
        }
        if (escalate) {
            for (Slot& s : slots)
                if (s.pid > 0 && (s.state == SlotStatus::State::Starting ||
                                  s.state == SlotStatus::State::Up))
                    ::kill(s.pid, SIGKILL);
        }
    }

    /// Reap deaths, read readiness bytes, run the breaker/backoff state
    /// machine, spawn due slots.  Caller holds mu.
    void reapAndManageLocked()
    {
        const double t = now();
        const bool winding = drainFlag.load(std::memory_order_acquire) ||
                             escalateFlag.load(std::memory_order_acquire);
        for (Slot& s : slots) {
            if (s.pid > 0) {
                int status = 0;
                const pid_t r = ::waitpid(s.pid, &status, WNOHANG);
                if (r == s.pid) {
                    onDeathLocked(s, status, t);
                    continue;
                }
            }
            if (s.state == SlotStatus::State::Starting && s.readyFd >= 0) {
                char byte = 0;
                const ssize_t r = ::read(s.readyFd, &byte, 1);
                if (r == 1) {
                    ::close(s.readyFd);
                    s.readyFd = -1;
                    if (byte == 'R') {
                        s.state = SlotStatus::State::Up;
                        s.upSince = t;
                    }
                    // 'F': leave Starting; waitpid classifies the exit.
                }
            }
            if (s.state == SlotStatus::State::Up) {
                s.lastRssBytes =
                    boards[s.index].rssBytes.load(std::memory_order_relaxed);
                // A worker that survived a full breaker window earns its
                // slot a clean bill: backoff and the death window reset.
                if (t - s.upSince >= opts.breakerWindowSeconds &&
                    (s.backoffSeconds > opts.backoffInitialSeconds ||
                     !s.deathTimes.empty())) {
                    s.backoffSeconds = opts.backoffInitialSeconds;
                    s.deathTimes.clear();
                }
            }
            if (winding) {
                if (s.state == SlotStatus::State::Backoff ||
                    s.state == SlotStatus::State::Degraded)
                    s.state = SlotStatus::State::Exited;
                continue;
            }
            if (s.state == SlotStatus::State::Degraded && t >= s.degradedUntil) {
                // Half-open: one respawn attempt; a fresh death inside the
                // (pruned) window re-trips the breaker immediately.
                s.state = SlotStatus::State::Backoff;
                s.nextSpawnAt = t;
            }
            if (s.state == SlotStatus::State::Backoff && t >= s.nextSpawnAt) {
                std::string error;
                if (!spawnLocked(s, /*isRespawn=*/true, &error)) {
                    supervisorLog("hqs-serve: respawn slot %d failed: %s", s.index,
                                  error.c_str());
                    s.nextSpawnAt = t + s.backoffSeconds;
                }
            }
        }
    }

    void onDeathLocked(Slot& s, int status, double t)
    {
        if (s.readyFd >= 0) {
            ::close(s.readyFd);
            s.readyFd = -1;
        }
        const pid_t deadPid = s.pid;
        s.pid = -1;
        s.lastExitStatus = status;
        WorkerScoreboard& board = boards[s.index];
        s.lastRssBytes = board.rssBytes.load(std::memory_order_relaxed);

        const bool clean = WIFEXITED(status) && WEXITSTATUS(status) == 0;
        const bool hardKill = (WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL) ||
                              (WIFEXITED(status) && WEXITSTATUS(status) == 137);
        const bool oomKill = hardKill && opts.workerAddressSpaceLimitBytes > 0 &&
                             s.lastRssBytes >=
                                 static_cast<std::uint64_t>(
                                     0.9 * static_cast<double>(
                                               opts.workerAddressSpaceLimitBytes));
        if (!clean) {
            ++s.crashes;
            ++crashesTotal;
            OBS_COUNT("service.worker.crashes", 1);
            if (oomKill) {
                ++s.oomKills;
                ++oomKillsTotal;
                OBS_COUNT("service.worker.oomkills", 1);
            }
            const std::string what = describeDeath(status, oomKill, s.lastRssBytes);
            supervisorLog("hqs-serve: {\"event\":\"worker-death\",\"slot\":%d,"
                          "\"pid\":%d,\"detail\":\"%s\"}",
                          s.index, static_cast<int>(deadPid), what.c_str());
            // Harvest the victim's journal: every request it was executing
            // becomes a structured worker-crash failure.
            for (const ScoreboardEntry& e : board.journal) {
                if (e.state.load(std::memory_order_acquire) != ScoreboardEntry::Filled)
                    continue;
                WorkerCrashReport report;
                report.slot = s.index;
                report.pid = static_cast<int>(deadPid);
                report.requestHash = e.requestHash.load(std::memory_order_relaxed);
                report.oomKill = oomKill;
                report.failure.kind = FailureKind::WorkerCrash;
                report.failure.site.assign(e.site,
                                           strnlen(e.site, sizeof e.site));
                report.failure.what = what;
                reports.push_back(std::move(report));
                OBS_COUNT("service.worker.crashed_requests", 1);
            }
        }
        board.reset();

        if (drainFlag.load(std::memory_order_acquire) ||
            escalateFlag.load(std::memory_order_acquire)) {
            s.state = SlotStatus::State::Exited;
            return;
        }
        // Breaker + backoff (clean-but-unexpected exits respawn too: a
        // worker has no business exiting on its own outside a drain).
        s.deathTimes.push_back(t);
        while (!s.deathTimes.empty() &&
               s.deathTimes.front() < t - opts.breakerWindowSeconds)
            s.deathTimes.pop_front();
        if (static_cast<int>(s.deathTimes.size()) >= opts.breakerDeaths) {
            s.state = SlotStatus::State::Degraded;
            s.degradedUntil = t + opts.breakerCooldownSeconds;
            supervisorLog("hqs-serve: slot %d crash-looping (%zu deaths in %.1fs); "
                          "degraded for %.1fs",
                          s.index, s.deathTimes.size(), opts.breakerWindowSeconds,
                          opts.breakerCooldownSeconds);
        } else {
            s.state = SlotStatus::State::Backoff;
            s.nextSpawnAt = t + s.backoffSeconds;
            s.backoffSeconds =
                std::min(s.backoffSeconds * 2.0, opts.backoffMaxSeconds);
        }
    }

    // ------------------------------------------------- degraded responder --

    /// The master's own 503 listeners exist exactly while no worker can
    /// accept: every slot dead/parked, or the fleet is draining (workers
    /// close their listeners on SIGTERM).  Caller holds mu.
    void updateResponderLocked()
    {
        int live = 0;
        for (const Slot& s : slots)
            if (s.state == SlotStatus::State::Starting ||
                s.state == SlotStatus::State::Up)
                ++live;
        const bool want = live == 0 || drainFlag.load(std::memory_order_acquire);
        if (want && responderHttpFd < 0) {
            std::string error;
            responderHttpFd = listenTcp(boundHttpPort, true, nullptr, &error);
            if (responderHttpFd < 0)
                supervisorLog("hqs-serve: degraded responder: %s", error.c_str());
            if (opts.service.enableJsonl)
                responderJsonlFd = listenTcp(boundJsonlPort, true, nullptr, &error);
        } else if (!want && responderHttpFd >= 0) {
            ::close(responderHttpFd);
            responderHttpFd = -1;
            if (responderJsonlFd >= 0) {
                ::close(responderJsonlFd);
                responderJsonlFd = -1;
            }
        }
    }

    std::string responderBody(bool jsonl) const
    {
        const bool draining = drainFlag.load(std::memory_order_acquire);
        const auto retryMs = static_cast<long long>(
            opts.degradedRetryAfterSeconds * 1000.0 + 0.5);
        const std::string payload = std::string("{\"error\":\"") +
                                    (draining ? "draining" : "degraded") +
                                    "\",\"retry_after_ms\":" +
                                    std::to_string(retryMs) + "}";
        if (jsonl) return payload + "\n";
        const long long secs = (retryMs + 999) / 1000;
        return httpResponse(503, "application/json", payload, /*keepAlive=*/false,
                            "Retry-After: " + std::to_string(secs) + "\r\n");
    }

    // ------------------------------------------------------ connections --

    void acceptConns(int listenFd, bool responder, bool jsonl)
    {
        while (true) {
            const int fd = ::accept4(listenFd, nullptr, nullptr,
                                     SOCK_CLOEXEC | SOCK_NONBLOCK);
            if (fd < 0) {
                if (errno == EINTR) continue;
                return;
            }
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            Conn& c = conns[fd];
            c.fd = fd;
            c.responder = responder;
            c.jsonl = jsonl;
            if (responder) {
                // Answer immediately; linger briefly draining the request
                // bytes so close() sends FIN, not RST-on-unread-data.
                c.out = responderBody(jsonl);
                c.deadline = now() + 0.5;
                OBS_COUNT("service.worker.shed", 1);
                flushConn(fd);
            }
        }
    }

    void handleConnEvent(int fd, short revents)
    {
        auto it = conns.find(fd);
        if (it == conns.end()) return;
        Conn& c = it->second;
        if (revents & (POLLHUP | POLLERR)) {
            closeConn(fd);
            return;
        }
        if (revents & POLLIN) {
            char buf[16 * 1024];
            while (true) {
                const ssize_t n = ::recv(fd, buf, sizeof buf, 0);
                if (n > 0) {
                    if (!c.responder) c.in.append(buf, static_cast<std::size_t>(n));
                    continue; // responder conns: read and discard
                }
                if (n == 0) {
                    closeConn(fd);
                    return;
                }
                if (errno == EINTR) continue;
                if (errno == EAGAIN || errno == EWOULDBLOCK) break;
                closeConn(fd);
                return;
            }
            if (!c.responder && !parseAdmin(c)) {
                closeConn(fd);
                return;
            }
        }
        if (revents & POLLOUT) flushConn(fd);
    }

    /// Parse and answer every complete admin request buffered on @p c.
    /// Returns false on a protocol error (caller closes).
    bool parseAdmin(Conn& c)
    {
        while (true) {
            HttpRequest req;
            const HttpParser::Status st = c.parser.consumeRequest(c.in, req);
            if (st == HttpParser::Status::NeedMore) return true;
            if (st == HttpParser::Status::Error) {
                c.out += httpResponse(c.parser.errorStatus(), "application/json",
                                      "{\"error\":\"bad request\"}",
                                      /*keepAlive=*/false);
                flushConn(c.fd);
                return false;
            }
            const bool keepAlive = req.keepAlive();
            std::string body;
            std::string type = "application/json";
            int status = 200;
            if (req.method == "GET" && req.target == "/healthz") {
                body = healthzJson();
            } else if (req.method == "GET" && req.target == "/metrics") {
                body = mergedMetricsText();
                type = "text/plain; version=0.0.4";
            } else if (req.method == "GET" && req.target == "/stats") {
                body = statsJson();
            } else {
                status = 404;
                body = "{\"error\":\"no such endpoint\"}";
            }
            c.out += httpResponse(status, type, body, keepAlive);
            if (!flushConn(c.fd)) return true; // conn gone; stop parsing
            if (!keepAlive) {
                closeConn(c.fd);
                return true;
            }
        }
    }

    /// Returns false when the connection was closed.
    bool flushConn(int fd)
    {
        auto it = conns.find(fd);
        if (it == conns.end()) return false;
        Conn& c = it->second;
        while (!c.out.empty()) {
            const ssize_t n = ::send(fd, c.out.data(), c.out.size(), MSG_NOSIGNAL);
            if (n > 0) {
                c.out.erase(0, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
            closeConn(fd);
            return false;
        }
        if (c.responder && !c.shutdownSent) {
            c.shutdownSent = true;
            ::shutdown(fd, SHUT_WR); // FIN now; the linger drains stragglers
        }
        return true;
    }

    void expireResponderConns()
    {
        const double t = now();
        std::vector<int> dead;
        for (const auto& [fd, c] : conns)
            if (c.responder && t >= c.deadline) dead.push_back(fd);
        for (const int fd : dead) closeConn(fd);
    }

    void closeConn(int fd)
    {
        auto it = conns.find(fd);
        if (it == conns.end()) return;
        ::close(fd);
        conns.erase(it);
    }

    // ---------------------------------------------------- observability --

    std::string healthzJson() const
    {
        std::lock_guard<std::mutex> lock(mu);
        return healthzJsonLocked();
    }

    std::string healthzJsonLocked() const
    {
        const bool draining = drainFlag.load(std::memory_order_acquire);
        std::size_t degraded = 0, up = 0;
        for (const Slot& s : slots) {
            if (s.state == SlotStatus::State::Degraded) ++degraded;
            if (s.state == SlotStatus::State::Up ||
                s.state == SlotStatus::State::Starting)
                ++up;
        }
        const char* status =
            draining ? "draining" : (degraded > 0 || up == 0 ? "degraded" : "ok");
        std::ostringstream os;
        obs::JsonWriter w(os);
        w.beginObject();
        w.key("status").value(status);
        w.key("workers").value(static_cast<std::int64_t>(slots.size()));
        w.key("live").value(static_cast<std::int64_t>(up));
        w.key("degraded_slots").value(static_cast<std::int64_t>(degraded));
        w.key("slots").beginArray();
        for (const Slot& s : slots) {
            w.beginObject();
            w.key("slot").value(s.index);
            w.key("state").value(toString(s.state));
            w.key("pid").value(static_cast<std::int64_t>(s.pid > 0 ? s.pid : 0));
            w.key("respawns").value(s.respawns);
            w.key("crashes").value(s.crashes);
            w.key("rss_bytes").value(s.lastRssBytes);
            w.endObject();
        }
        w.endArray();
        w.endObject();
        return os.str();
    }

    std::string statsJson() const
    {
        std::lock_guard<std::mutex> lock(mu);
        std::ostringstream os;
        obs::JsonWriter w(os);
        w.beginObject();
        w.key("draining").value(drainFlag.load(std::memory_order_acquire));
        w.key("uptime_s").value(uptime.elapsedSeconds());
        w.key("workers").value(static_cast<std::int64_t>(slots.size()));
        w.key("respawns").value(respawnsTotal);
        w.key("crashes").value(crashesTotal);
        w.key("oomkills").value(oomKillsTotal);
        w.key("crash_reports").value(static_cast<std::int64_t>(reports.size()));
        w.endObject();
        return os.str();
    }

    /// Re-emit one worker's Prometheus text with worker="N" injected into
    /// every sample line; # metadata lines are deduplicated across workers
    /// via @p seenMeta.
    static std::string injectWorkerLabel(const std::string& text, int slot,
                                         std::unordered_set<std::string>& seenMeta)
    {
        std::string out;
        out.reserve(text.size() + 256);
        std::size_t pos = 0;
        const std::string label = "worker=\"" + std::to_string(slot) + "\"";
        while (pos < text.size()) {
            std::size_t eol = text.find('\n', pos);
            if (eol == std::string::npos) eol = text.size();
            const std::string line = text.substr(pos, eol - pos);
            pos = eol + 1;
            if (line.empty()) continue;
            if (line[0] == '#') {
                if (seenMeta.insert(line).second) out += line + "\n";
                continue;
            }
            const std::size_t space = line.find(' ');
            const std::size_t brace = line.find('{');
            if (brace != std::string::npos && brace < space) {
                out += line.substr(0, brace + 1) + label + "," +
                       line.substr(brace + 1) + "\n";
            } else if (space != std::string::npos) {
                out += line.substr(0, space) + "{" + label + "}" +
                       line.substr(space) + "\n";
            } else {
                out += line + "\n";
            }
        }
        return out;
    }

    std::string mergedMetricsText()
    {
        // Fleet-level gauges refresh at scrape time; the event counters
        // (respawns/crashes/oomkills/shed) accumulate where they happen.
        std::vector<std::pair<int, std::string>> targets;
        {
            std::lock_guard<std::mutex> lock(mu);
            std::size_t degraded = 0;
            for (const Slot& s : slots) {
                if (s.state == SlotStatus::State::Degraded) ++degraded;
                if (s.state == SlotStatus::State::Up)
                    targets.emplace_back(s.index, udsPath(s.index));
            }
            OBS_GAUGE_SET("service.worker.degraded_slots", degraded);
            OBS_GAUGE_SET("service.worker.uptime_s",
                          static_cast<std::int64_t>(uptime.elapsedSeconds()));
            OBS_GAUGE_SET("service.worker.live", targets.size());
        }
        std::ostringstream os;
        obs::writePrometheusText(os, obs::globalRegistry().snapshot());
        std::string out = os.str();
        std::unordered_set<std::string> seenMeta;
        for (const auto& [slot, path] : targets) {
            BlockingClient scrape;
            if (!scrape.connectUnix(path, /*timeoutSeconds=*/0.5)) continue;
            if (!scrape.sendAll("GET /metrics HTTP/1.1\r\nHost: hqs\r\n"
                                "Connection: close\r\n\r\n"))
                continue;
            HttpResponseMsg resp;
            if (!scrape.readResponse(resp) || resp.status != 200) continue;
            out += injectWorkerLabel(resp.body, slot, seenMeta);
        }
        return out;
    }

    // --------------------------------------------------------- shutdown --

    void shutdownLoop()
    {
        std::vector<int> fds;
        for (const auto& [fd, c] : conns) fds.push_back(fd);
        for (const int fd : fds) closeConn(fd);
        for (int* fd : {&adminListenFd, &responderHttpFd, &responderJsonlFd}) {
            if (*fd >= 0) {
                ::close(*fd);
                *fd = -1;
            }
        }
        {
            std::lock_guard<std::mutex> lock(mu);
            for (const Slot& s : slots) ::unlink(udsPath(s.index).c_str());
        }
        if (madeRunDir) ::rmdir(runDir.c_str()); // fails harmlessly if non-empty
        {
            std::lock_guard<std::mutex> lock(exitMu);
            exited = true;
        }
        exitCv.notify_all();
    }

    void wake()
    {
        const char byte = 'w';
        [[maybe_unused]] const ssize_t n = ::write(selfPipe[1], &byte, 1);
    }

    ~Impl()
    {
        for (const int fd : {selfPipe[0], selfPipe[1], httpReserveFd, jsonlReserveFd,
                             adminListenFd, responderHttpFd, responderJsonlFd})
            if (fd >= 0) ::close(fd);
        if (boards) ::munmap(boards, boardsBytes);
    }
};

Supervisor::Supervisor(SupervisorOptions opts)
    : impl_(std::make_unique<Impl>(std::move(opts)))
{
}

Supervisor::~Supervisor()
{
    installSignalDrain(nullptr);
    stop();
}

bool Supervisor::start(std::string* error)
{
    std::string err;
    if (!impl_->start(&err)) {
        if (error) *error = err;
        // Kill any children a partial start forked.
        for (Impl::Slot& s : impl_->slots) {
            if (s.pid > 0) {
                ::kill(s.pid, SIGKILL);
                ::waitpid(s.pid, nullptr, 0);
                s.pid = -1;
            }
            if (s.readyFd >= 0) {
                ::close(s.readyFd);
                s.readyFd = -1;
            }
        }
        return false;
    }
    return true;
}

std::uint16_t Supervisor::httpPort() const { return impl_->boundHttpPort; }
std::uint16_t Supervisor::jsonlPort() const { return impl_->boundJsonlPort; }
std::uint16_t Supervisor::adminPort() const { return impl_->boundAdminPort; }

void Supervisor::beginDrain()
{
    impl_->drainFlag.store(true, std::memory_order_release);
    impl_->wake();
}

bool Supervisor::waitForExit(double timeoutSeconds)
{
    std::unique_lock<std::mutex> lock(impl_->exitMu);
    if (timeoutSeconds <= 0) {
        impl_->exitCv.wait(lock, [this] { return impl_->exited; });
        return true;
    }
    return impl_->exitCv.wait_for(lock,
                                  std::chrono::duration<double>(timeoutSeconds),
                                  [this] { return impl_->exited; });
}

void Supervisor::stop()
{
    if (!impl_->started) return;
    impl_->drainFlag.store(true, std::memory_order_release);
    impl_->escalateFlag.store(true, std::memory_order_release);
    impl_->wake();
    if (impl_->loopThread.joinable()) impl_->loopThread.join();
    impl_->started = false;
}

bool Supervisor::draining() const
{
    return impl_->drainFlag.load(std::memory_order_acquire);
}

std::vector<SlotStatus> Supervisor::slots() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    std::vector<SlotStatus> out;
    out.reserve(impl_->slots.size());
    for (const Impl::Slot& s : impl_->slots) {
        SlotStatus st;
        st.slot = s.index;
        st.pid = s.pid > 0 ? static_cast<int>(s.pid) : 0;
        st.state = s.state;
        st.respawns = s.respawns;
        st.crashes = s.crashes;
        st.oomKills = s.oomKills;
        st.lastExitStatus = s.lastExitStatus;
        st.rssBytes = s.lastRssBytes;
        out.push_back(st);
    }
    return out;
}

std::vector<WorkerCrashReport> Supervisor::crashReports() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->reports;
}

std::uint64_t Supervisor::totalRespawns() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->respawnsTotal;
}

std::uint64_t Supervisor::totalCrashes() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->crashesTotal;
}

std::uint64_t Supervisor::totalOomKills() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    return impl_->oomKillsTotal;
}

std::size_t Supervisor::degradedSlots() const
{
    std::lock_guard<std::mutex> lock(impl_->mu);
    std::size_t n = 0;
    for (const Impl::Slot& s : impl_->slots)
        if (s.state == SlotStatus::State::Degraded) ++n;
    return n;
}

std::string Supervisor::healthzJson() const { return impl_->healthzJson(); }

void Supervisor::installSignalDrain(Supervisor* s)
{
    if (!s) {
        gSupervisorSignalFd.store(-1, std::memory_order_relaxed);
        return;
    }
    s->impl_->signalBaseline.store(
        gSupervisorSignalCount.load(std::memory_order_relaxed), std::memory_order_relaxed);
    gSupervisorSignalFd.store(s->impl_->selfPipe[1], std::memory_order_relaxed);
    struct sigaction sa{};
    sa.sa_handler = supervisorSignalHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);
}

} // namespace hqs::service
