#include "src/service/worker.hpp"

#include <sys/resource.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "src/obs/metrics.hpp"
#include "src/service/client.hpp"

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define HQS_UNDER_SANITIZER 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define HQS_UNDER_SANITIZER 1
#endif
#ifndef HQS_UNDER_SANITIZER
#define HQS_UNDER_SANITIZER 0
#endif

namespace hqs::service {
namespace {

/// Post-fork stderr logging: a single write(2) of a stack buffer — no
/// stdio locks, which another parent thread may have held at fork time.
void workerLog(int slot, const char* msg)
{
    char buf[256];
    const int n = std::snprintf(buf, sizeof buf, "hqs-worker[%d]: %s\n", slot, msg);
    if (n > 0) {
        [[maybe_unused]] const ssize_t w =
            ::write(STDERR_FILENO, buf, static_cast<std::size_t>(n));
    }
}

void signalReady(int fd, char byte)
{
    if (fd < 0) return;
    while (::write(fd, &byte, 1) < 0 && errno == EINTR) {
    }
    ::close(fd);
}

} // namespace

void runWorker(const WorkerConfig& config)
{
    ignoreSigpipe();
    // The fork snapshotted the master's metrics registry; reset it so this
    // worker's /metrics reports only its own activity (the supervisor
    // re-labels and merges per-worker samples, double counts would lie).
    obs::globalRegistry().reset();

    if (config.addressSpaceLimitBytes > 0 && !HQS_UNDER_SANITIZER) {
        // Layered under the cooperative RSS watchdog: the watchdog degrades
        // the solve gracefully, this rlimit is the hard backstop that makes
        // an escaped allocation die as std::bad_alloc / SIGKILL inside this
        // process only.
        rlimit rl{};
        rl.rlim_cur = config.addressSpaceLimitBytes;
        rl.rlim_max = config.addressSpaceLimitBytes;
        if (::setrlimit(RLIMIT_AS, &rl) != 0)
            workerLog(config.slot, "setrlimit(RLIMIT_AS) failed");
    }

    SolverService service(config.service);
    std::string error;
    if (!service.start(&error)) {
        workerLog(config.slot, ("start failed: " + error).c_str());
        signalReady(config.readyFd, 'F');
        _exit(2);
    }
    // SIGTERM/SIGINT drain exactly like single-process dqbf_serve: finish
    // in-flight solves, flush responses, then fall through waitForDrained.
    SolverService::installSignalDrain(&service);
    signalReady(config.readyFd, 'R');

    service.waitForDrained(0);
    SolverService::installSignalDrain(nullptr);
    // _exit, not exit: the child shares atexit/static state with the
    // supervisor image and must not run its destructors.  Drained responses
    // are already flushed by the loop thread before waitForDrained returns.
    _exit(0);
}

} // namespace hqs::service
