// Worker side of the supervised fleet: what runs in each forked child.
//
// A worker is the existing single-process SolverService, re-parented: it
// joins the shared SO_REUSEPORT listener group on the ports the supervisor
// reserved, journals every solve in its shared-memory scoreboard slot,
// serves /metrics///stats on a per-slot Unix socket for fleet scraping, and
// caps its own address space with setrlimit(RLIMIT_AS) so a runaway
// elimination dies inside its own process instead of taking the machine to
// the OOM killer.  SIGTERM drains it exactly like the single-process serve
// path; a worker that finishes draining _exit(0)s and the supervisor
// classifies that as a clean exit.
#pragma once

#include "src/service/server.hpp"

namespace hqs::service {

struct WorkerConfig {
    /// Fully resolved service options: fixed ports, reusePort = true,
    /// scoreboard slot pointer and metrics UDS path already set by the
    /// supervisor.
    ServiceOptions service;
    int slot = 0;
    /// Hard address-space cap (RLIMIT_AS) applied before serving;
    /// 0 = unlimited.  Skipped under ASan/TSan, whose shadow mappings
    /// cannot live under an address-space rlimit.
    std::size_t addressSpaceLimitBytes = 0;
    /// Write end of the readiness pipe: one 'R' byte after a successful
    /// start, 'F' on failure, then closed.  -1 = no readiness protocol.
    int readyFd = -1;
};

/// Run the worker until drained; never returns (always _exit).
/// Exit codes: 0 after a clean drain, 2 when the service failed to start.
[[noreturn]] void runWorker(const WorkerConfig& config);

} // namespace hqs::service
