#include "src/service/http.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

namespace hqs::service {
namespace {

std::string toLower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

std::string_view trim(std::string_view s)
{
    while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) s.remove_prefix(1);
    while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
        s.remove_suffix(1);
    return s;
}

const std::string* findHeader(const std::vector<HttpHeader>& headers,
                              std::string_view lowerName)
{
    for (const HttpHeader& h : headers)
        if (h.name == lowerName) return &h.value;
    return nullptr;
}

/// Split the header block [0, headEnd) of @p buf into lines and parse
/// "Name: value" headers (the first line is handled by the caller).
bool parseHeaderLines(std::string_view head, std::string_view& firstLine,
                      std::vector<HttpHeader>& headers)
{
    std::size_t pos = head.find('\n');
    if (pos == std::string_view::npos) return false;
    firstLine = trim(head.substr(0, pos));
    ++pos;
    while (pos < head.size()) {
        std::size_t eol = head.find('\n', pos);
        if (eol == std::string_view::npos) eol = head.size();
        const std::string_view line = trim(head.substr(pos, eol - pos));
        pos = eol + 1;
        if (line.empty()) continue;
        const std::size_t colon = line.find(':');
        if (colon == std::string_view::npos) return false;
        headers.push_back({toLower(std::string(trim(line.substr(0, colon)))),
                           std::string(trim(line.substr(colon + 1)))});
    }
    return true;
}

/// Content-Length of @p headers; false on a malformed value.  Absent counts
/// as 0 (GET and header-only responses).
bool contentLength(const std::vector<HttpHeader>& headers, std::size_t& out)
{
    out = 0;
    const std::string* v = findHeader(headers, "content-length");
    if (!v) return true;
    if (v->empty()) return false;
    char* end = nullptr;
    const unsigned long long n = std::strtoull(v->c_str(), &end, 10);
    if (end != v->c_str() + v->size()) return false;
    out = static_cast<std::size_t>(n);
    return true;
}

} // namespace

const std::string* HttpRequest::header(std::string_view lowerName) const
{
    return findHeader(headers, lowerName);
}

const std::string* HttpResponseMsg::header(std::string_view lowerName) const
{
    return findHeader(headers, lowerName);
}

bool HttpRequest::keepAlive() const
{
    const std::string* conn = header("connection");
    if (conn) {
        const std::string v = toLower(*conn);
        if (v.find("close") != std::string::npos) return false;
        if (v.find("keep-alive") != std::string::npos) return true;
    }
    return version != "HTTP/1.0";
}

HttpParser::Status HttpParser::fail(int status, std::string reason)
{
    errorStatus_ = status;
    errorReason_ = std::move(reason);
    return Status::Error;
}

HttpParser::Status HttpParser::consumeRequest(std::string& buf, HttpRequest& out)
{
    const std::size_t headEnd = buf.find("\r\n\r\n");
    if (headEnd == std::string::npos) {
        if (buf.size() > maxHeaderBytes_) return fail(431, "header block too large");
        return Status::NeedMore;
    }
    if (headEnd > maxHeaderBytes_) return fail(431, "header block too large");

    HttpRequest req;
    std::string_view firstLine;
    if (!parseHeaderLines(std::string_view(buf).substr(0, headEnd + 2), firstLine,
                          req.headers))
        return fail(400, "malformed header");

    // Request line: METHOD SP TARGET SP VERSION.
    const std::size_t sp1 = firstLine.find(' ');
    const std::size_t sp2 = firstLine.rfind(' ');
    if (sp1 == std::string_view::npos || sp2 == sp1) return fail(400, "malformed request line");
    req.method = std::string(firstLine.substr(0, sp1));
    req.target = std::string(trim(firstLine.substr(sp1 + 1, sp2 - sp1 - 1)));
    req.version = std::string(firstLine.substr(sp2 + 1));
    if (req.method.empty() || req.target.empty() || req.version.rfind("HTTP/", 0) != 0)
        return fail(400, "malformed request line");

    std::size_t bodyLen = 0;
    if (!contentLength(req.headers, bodyLen)) return fail(400, "malformed content-length");
    if (req.header("transfer-encoding")) return fail(400, "chunked bodies unsupported");
    if (bodyLen > maxBodyBytes_) return fail(413, "body exceeds limit");

    const std::size_t total = headEnd + 4 + bodyLen;
    if (buf.size() < total) return Status::NeedMore;
    req.body = buf.substr(headEnd + 4, bodyLen);
    buf.erase(0, total);
    out = std::move(req);
    return Status::Ready;
}

HttpParser::Status HttpParser::consumeResponse(std::string& buf, HttpResponseMsg& out)
{
    const std::size_t headEnd = buf.find("\r\n\r\n");
    if (headEnd == std::string::npos) {
        if (buf.size() > maxHeaderBytes_) return fail(431, "header block too large");
        return Status::NeedMore;
    }

    HttpResponseMsg rsp;
    std::string_view firstLine;
    if (!parseHeaderLines(std::string_view(buf).substr(0, headEnd + 2), firstLine,
                          rsp.headers))
        return fail(400, "malformed header");

    // Status line: VERSION SP CODE SP REASON.
    const std::size_t sp1 = firstLine.find(' ');
    if (sp1 == std::string_view::npos || firstLine.rfind("HTTP/", 0) != 0)
        return fail(400, "malformed status line");
    rsp.version = std::string(firstLine.substr(0, sp1));
    rsp.status = std::atoi(std::string(firstLine.substr(sp1 + 1)).c_str());
    if (rsp.status < 100 || rsp.status > 599) return fail(400, "malformed status code");

    std::size_t bodyLen = 0;
    if (!contentLength(rsp.headers, bodyLen)) return fail(400, "malformed content-length");
    if (bodyLen > maxBodyBytes_) return fail(413, "body exceeds limit");

    const std::size_t total = headEnd + 4 + bodyLen;
    if (buf.size() < total) return Status::NeedMore;
    rsp.body = buf.substr(headEnd + 4, bodyLen);
    buf.erase(0, total);
    out = std::move(rsp);
    return Status::Ready;
}

const char* statusReason(int status)
{
    switch (status) {
        case 200: return "OK";
        case 400: return "Bad Request";
        case 404: return "Not Found";
        case 405: return "Method Not Allowed";
        case 413: return "Payload Too Large";
        case 429: return "Too Many Requests";
        case 431: return "Request Header Fields Too Large";
        case 503: return "Service Unavailable";
        default: return "Unknown";
    }
}

std::string httpResponse(int status, std::string_view contentType, std::string_view body,
                         bool keepAlive, std::string_view extraHeaders)
{
    std::string out;
    out.reserve(body.size() + 160);
    out += "HTTP/1.1 ";
    out += std::to_string(status);
    out += ' ';
    out += statusReason(status);
    out += "\r\nContent-Type: ";
    out += contentType;
    out += "\r\nContent-Length: ";
    out += std::to_string(body.size());
    out += "\r\nConnection: ";
    out += keepAlive ? "keep-alive" : "close";
    out += "\r\n";
    out += extraHeaders;
    out += "\r\n";
    out += body;
    return out;
}

// ----------------------------------------------------------------- JSON ---

std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    const char* hex = "0123456789abcdef";
                    out += "\\u00";
                    out += hex[(c >> 4) & 0xf];
                    out += hex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
    return out;
}

bool jsonStringField(const std::string& obj, const std::string& key, std::string& out)
{
    const std::string needle = "\"" + key + "\":\"";
    const std::size_t start = obj.find(needle);
    if (start == std::string::npos) return false;
    out.clear();
    std::size_t i = start + needle.size();
    while (i < obj.size()) {
        const char c = obj[i];
        if (c == '"') return true;
        if (c == '\\') {
            if (i + 1 >= obj.size()) return false;
            const char esc = obj[i + 1];
            switch (esc) {
                case '"': out.push_back('"'); break;
                case '\\': out.push_back('\\'); break;
                case 'n': out.push_back('\n'); break;
                case 'r': out.push_back('\r'); break;
                case 't': out.push_back('\t'); break;
                case 'u': {
                    // Only \u00XX is ever produced by jsonEscape.
                    if (i + 5 >= obj.size()) return false;
                    const std::string hex = obj.substr(i + 2, 4);
                    char* end = nullptr;
                    out.push_back(static_cast<char>(std::strtoul(hex.c_str(), &end, 16)));
                    if (end != hex.c_str() + hex.size()) return false;
                    i += 4;
                    break;
                }
                default: return false;
            }
            i += 2;
        } else {
            out.push_back(c);
            ++i;
        }
    }
    return false; // unterminated string
}

bool jsonNumberField(const std::string& obj, const std::string& key, double& out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t start = obj.find(needle);
    if (start == std::string::npos) return false;
    const char* begin = obj.c_str() + start + needle.size();
    char* end = nullptr;
    const double v = std::strtod(begin, &end);
    if (end == begin) return false;
    out = v;
    return true;
}

bool jsonBoolField(const std::string& obj, const std::string& key, bool& out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t start = obj.find(needle);
    if (start == std::string::npos) return false;
    const std::size_t pos = start + needle.size();
    if (obj.compare(pos, 4, "true") == 0) {
        out = true;
        return true;
    }
    if (obj.compare(pos, 5, "false") == 0) {
        out = false;
        return true;
    }
    return false;
}

bool jsonScalarField(const std::string& obj, const std::string& key, std::string& out)
{
    const std::string needle = "\"" + key + "\":";
    const std::size_t start = obj.find(needle);
    if (start == std::string::npos) return false;
    std::size_t pos = start + needle.size();
    while (pos < obj.size() && (obj[pos] == ' ' || obj[pos] == '\t')) ++pos;
    if (pos < obj.size() && obj[pos] == '"')
        return jsonStringField(obj, key, out);
    out.clear();
    while (pos < obj.size()) {
        const char c = obj[pos];
        if (c == ',' || c == '}' || c == ' ' || c == '\t') break;
        out.push_back(c);
        ++pos;
    }
    return !out.empty();
}

// ------------------------------------------------------ solve protocol ---

std::string buildHttpSolveRequest(const std::string& formula,
                                  const SolveRequestOptions& opts, bool keepAlive)
{
    std::string out;
    out.reserve(formula.size() + 200);
    out += "POST /solve HTTP/1.1\r\nHost: dqbf\r\nContent-Type: text/plain\r\n";
    out += "Content-Length: ";
    out += std::to_string(formula.size());
    out += "\r\n";
    if (opts.timeoutSeconds > 0) {
        out += "timeout-ms: ";
        out += std::to_string(static_cast<long long>(opts.timeoutSeconds * 1000.0));
        out += "\r\n";
    }
    if (opts.rssLimitBytes > 0) {
        out += "rss-limit-mb: ";
        out += std::to_string(opts.rssLimitBytes / (1024 * 1024));
        out += "\r\n";
    }
    if (!opts.engine.empty()) {
        out += "engine: ";
        out += opts.engine;
        out += "\r\n";
    }
    if (opts.certify) out += "certify: 1\r\n";
    if (!opts.cacheControl.empty()) {
        // v2 spelling: the v1 "cache-control" header shadowed standard HTTP
        // Cache-Control semantics; the server still accepts it as a
        // deprecated alias for one release.
        out += "solver-cache: ";
        out += opts.cacheControl;
        out += "\r\n";
    }
    if (!opts.strategy.empty()) {
        out += "strategy: ";
        out += opts.strategy;
        out += "\r\n";
    }
    if (!opts.format.empty()) {
        out += "format: ";
        out += opts.format;
        out += "\r\n";
    }
    if (!keepAlive) out += "Connection: close\r\n";
    out += "\r\n";
    out += formula;
    return out;
}

std::string buildJsonlHandshake(int version)
{
    return "{\"v\":" + std::to_string(version) + "}\n";
}

std::string buildJsonlSolveRequest(const std::string& id, const std::string& formula,
                                   const SolveRequestOptions& opts)
{
    std::string out = "{\"id\":\"" + jsonEscape(id) + "\"";
    if (!opts.op.empty()) out += ",\"op\":\"" + jsonEscape(opts.op) + "\"";
    if (!opts.session.empty())
        out += ",\"session\":\"" + jsonEscape(opts.session) + "\"";
    if (opts.timeoutSeconds > 0)
        out += ",\"timeout_ms\":" +
               std::to_string(static_cast<long long>(opts.timeoutSeconds * 1000.0));
    if (opts.rssLimitBytes > 0)
        out += ",\"rss_limit_mb\":" + std::to_string(opts.rssLimitBytes / (1024 * 1024));
    if (!opts.engine.empty()) out += ",\"engine\":\"" + jsonEscape(opts.engine) + "\"";
    if (opts.certify) out += ",\"certify\":true";
    if (!opts.cacheControl.empty())
        out += ",\"cache\":\"" + jsonEscape(opts.cacheControl) + "\"";
    if (!opts.strategy.empty())
        out += ",\"strategy\":\"" + jsonEscape(opts.strategy) + "\"";
    if (!opts.format.empty()) out += ",\"format\":\"" + jsonEscape(opts.format) + "\"";
    if (!opts.addGroup.empty())
        out += ",\"add_group\":\"" + jsonEscape(opts.addGroup) + "\"";
    if (!opts.deltaClauses.empty())
        out += ",\"clauses\":\"" + jsonEscape(opts.deltaClauses) + "\"";
    if (!opts.retractGroup.empty())
        out += ",\"retract_group\":\"" + jsonEscape(opts.retractGroup) + "\"";
    if (!opts.gate.empty()) out += ",\"gate\":\"" + jsonEscape(opts.gate) + "\"";
    if (!opts.assume.empty())
        out += ",\"assume\":\"" + jsonEscape(opts.assume) + "\"";
    if (!formula.empty()) out += ",\"formula\":\"" + jsonEscape(formula) + "\"";
    out += "}\n";
    return out;
}

} // namespace hqs::service
