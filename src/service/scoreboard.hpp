// Worker scoreboard: a lock-free, crash-tolerant journal of what each worker
// process is executing, living in a MAP_SHARED|MAP_ANONYMOUS region mapped
// before the supervisor forks.  When a worker dies, the supervisor reads the
// victim's journal to stamp every in-flight request with a structured
// FailureInfo{kind=worker-crash, site=<last obs span>} instead of letting it
// vanish as a silent connection reset.
//
// Consistency model: the worker is the only writer of its slot; the
// supervisor reads after waitpid() has proven the writer dead, so torn
// in-progress entries are the only hazard.  Each journal entry carries an
// atomic state word written last (Filled) / first (Free), so the supervisor
// only trusts entries it observes in Filled state.  No pthread primitives —
// a robust mutex would survive crashes too, but plain atomics are simpler
// and cannot deadlock the supervisor on a corpse's lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>

namespace hqs::service {

/// One in-flight request journaled by a worker.  `site` is the solver's
/// current obs span (best effort, written at claim time).
struct ScoreboardEntry {
    enum : std::uint32_t { Free = 0, Claimed = 1, Filled = 2 };

    std::atomic<std::uint32_t> state{Free};
    std::atomic<std::uint64_t> requestHash{0}; ///< FNV-1a 64 of the formula text
    char site[48] = {};                        ///< NUL-terminated span label
};

/// Per-worker-slot scoreboard page.  Sized so a handful of slots fit well
/// under one page each; journal slots cover maxInflight + maxQueue for any
/// sane worker configuration.
struct WorkerScoreboard {
    static constexpr std::size_t kJournalSlots = 64;

    ScoreboardEntry journal[kJournalSlots];
    std::atomic<std::uint64_t> solvesStarted{0};
    std::atomic<std::uint64_t> solvesFinished{0};
    /// Worker's self-reported RSS, refreshed from the event loop roughly
    /// every 250 ms; the supervisor reads it post-mortem to classify
    /// SIGKILL deaths as OOM kills.
    std::atomic<std::uint64_t> rssBytes{0};

    /// Worker side: claim a journal entry for @p hash.  Returns the entry
    /// index, or kJournalSlots when the journal is full (the request simply
    /// goes unjournaled — containment degrades gracefully, never blocks).
    std::size_t claim(std::uint64_t hash, const char* siteLabel)
    {
        for (std::size_t i = 0; i < kJournalSlots; ++i) {
            std::uint32_t expected = ScoreboardEntry::Free;
            if (!journal[i].state.compare_exchange_strong(
                    expected, ScoreboardEntry::Claimed, std::memory_order_acq_rel))
                continue;
            journal[i].requestHash.store(hash, std::memory_order_relaxed);
            std::strncpy(journal[i].site, siteLabel ? siteLabel : "",
                         sizeof(journal[i].site) - 1);
            journal[i].site[sizeof(journal[i].site) - 1] = '\0';
            journal[i].state.store(ScoreboardEntry::Filled, std::memory_order_release);
            solvesStarted.fetch_add(1, std::memory_order_relaxed);
            return i;
        }
        return kJournalSlots;
    }

    /// Worker side: release a previously claimed entry.
    void release(std::size_t index)
    {
        if (index >= kJournalSlots) return;
        journal[index].state.store(ScoreboardEntry::Free, std::memory_order_release);
        solvesFinished.fetch_add(1, std::memory_order_relaxed);
    }

    /// Supervisor side: wipe the slot before handing it to a respawned
    /// worker (the previous corpse's journal has already been harvested).
    void reset()
    {
        for (auto& e : journal) {
            e.state.store(ScoreboardEntry::Free, std::memory_order_relaxed);
            e.requestHash.store(0, std::memory_order_relaxed);
            e.site[0] = '\0';
        }
        rssBytes.store(0, std::memory_order_relaxed);
    }
};

/// FNV-1a 64 over the request formula text — the hash workers journal and
/// crash reports carry, small enough for clients to correlate.
inline std::uint64_t scoreboardHash(const std::string& text)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace hqs::service
