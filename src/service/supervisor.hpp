// Supervision layer: a pre-forked, crash-contained worker fleet around the
// epoll SolverService.
//
// The master process never solves.  It reserves the service ports, maps one
// shared-memory scoreboard slot per worker, forks N workers that each run
// the existing event loop on a shared SO_REUSEPORT listener group, and then
// only supervises:
//
//   * waitpid-driven death detection, classifying every exit as clean /
//     error-exit / signal / OOM-kill (SIGKILL or exit 137 with the slot's
//     last self-reported RSS near its budget);
//   * respawn with per-slot exponential backoff, plus a crash-loop circuit
//     breaker — K deaths inside a W-second window parks the slot in
//     Degraded for a cooldown instead of flapping;
//   * requests that die with a worker surface as structured
//     FailureInfo{kind=worker-crash, site=<engine>} crash reports harvested
//     from the victim's scoreboard journal, never as silent resets;
//   * a self-pipe signal loop: first SIGTERM/SIGINT propagates a graceful
//     drain (SIGTERM) to every worker, a second signal escalates to SIGKILL;
//   * when no worker is alive (crash storm, full degradation, drain) the
//     master itself answers the service ports with 503 + Retry-After so the
//     listener never goes dark;
//   * fleet observability on a separate admin port: GET /metrics merges
//     every worker's Prometheus text (scraped over per-slot Unix sockets,
//     samples labeled worker="N") with the master's own
//     service.worker.{respawns,crashes,oomkills,degraded_slots,uptime_s};
//     GET /healthz reports ok|degraded|draining with per-slot detail.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/runtime/guard.hpp"
#include "src/service/server.hpp"

namespace hqs::service {

struct SupervisorOptions {
    /// Template for every worker's ServiceOptions.  httpPort/jsonlPort are
    /// the ports the fleet serves on (0 = ephemeral, read back through
    /// httpPort()/jsonlPort()); reusePort/metricsUdsPath/scoreboard are
    /// overwritten per worker.
    ServiceOptions service;

    int workers = 2;

    /// Hard per-worker address-space cap (setrlimit(RLIMIT_AS)); 0 = none.
    std::size_t workerAddressSpaceLimitBytes = 0;

    /// Respawn backoff: starts at initial, doubles per death, capped at max,
    /// reset after a worker stays up for breakerWindowSeconds.
    double backoffInitialSeconds = 0.25;
    double backoffMaxSeconds = 5.0;

    /// Crash-loop breaker: @p breakerDeaths deaths within
    /// @p breakerWindowSeconds parks the slot in Degraded for
    /// @p breakerCooldownSeconds before a half-open respawn attempt.
    int breakerDeaths = 5;
    double breakerWindowSeconds = 10.0;
    double breakerCooldownSeconds = 5.0;

    /// Master admin listener (merged /metrics, fleet /healthz, /stats).
    /// 0 binds an ephemeral port.
    std::uint16_t adminPort = 0;

    /// Directory for per-worker metrics Unix sockets; "" derives
    /// /tmp/hqs-serve-<pid>.  Created if missing, cleaned up on exit.
    std::string runDir;

    /// Advisory Retry-After (seconds) on the master's own degraded/draining
    /// 503 responses.
    double degradedRetryAfterSeconds = 1.0;
};

/// One request that died with its worker, stamped from the victim's
/// scoreboard journal.
struct WorkerCrashReport {
    int slot = -1;
    int pid = 0;
    std::uint64_t requestHash = 0; ///< scoreboardHash of the formula text
    bool oomKill = false;
    FailureInfo failure; ///< kind == FailureKind::WorkerCrash
};

struct SlotStatus {
    enum class State {
        Starting, ///< forked, waiting for the readiness byte
        Up,       ///< serving
        Backoff,  ///< dead, respawn scheduled
        Degraded, ///< breaker tripped, cooling down
        Exited,   ///< reaped and not coming back (drain/stop)
    };

    int slot = 0;
    int pid = 0;
    State state = State::Starting;
    std::uint64_t respawns = 0; ///< spawns after the first
    std::uint64_t crashes = 0;  ///< non-clean deaths
    std::uint64_t oomKills = 0;
    int lastExitStatus = 0; ///< raw waitpid status of the last death
    std::uint64_t rssBytes = 0; ///< last scoreboard self-report
};

const char* toString(SlotStatus::State s);

class Supervisor {
public:
    explicit Supervisor(SupervisorOptions opts = {});
    ~Supervisor(); ///< stop()s if still running

    Supervisor(const Supervisor&) = delete;
    Supervisor& operator=(const Supervisor&) = delete;

    /// Reserve ports, map the scoreboard, fork the fleet, start the
    /// supervision thread.  False (with @p error filled) on failure; the
    /// supervisor is then inert.
    bool start(std::string* error = nullptr);

    /// Fleet service ports and the master admin port (valid after start()).
    std::uint16_t httpPort() const;
    std::uint16_t jsonlPort() const;
    std::uint16_t adminPort() const;

    /// Graceful drain: SIGTERM every worker (they finish in-flight solves
    /// and flush), stop respawning, answer new connections 503, exit when
    /// the last worker is reaped.  Signal-context-safe.
    void beginDrain();

    /// Block until the supervision loop has exited (all workers reaped).
    /// @p timeoutSeconds 0 waits forever.  True when exited.
    bool waitForExit(double timeoutSeconds = 0);

    /// Hard stop: SIGKILL every worker, reap, join.  Safe to call twice.
    void stop();

    bool draining() const;

    std::vector<SlotStatus> slots() const;
    std::vector<WorkerCrashReport> crashReports() const;
    std::uint64_t totalRespawns() const;
    std::uint64_t totalCrashes() const;
    std::uint64_t totalOomKills() const;
    std::size_t degradedSlots() const;

    /// The admin /healthz payload: {"status":"ok|degraded|draining",
    /// "slots":[...]}.  Exposed for tests and the CLI.
    std::string healthzJson() const;

    /// Route SIGTERM/SIGINT to beginDrain() (second signal escalates to
    /// SIGKILL).  Pass nullptr to detach.
    static void installSignalDrain(Supervisor* s);

private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace hqs::service
