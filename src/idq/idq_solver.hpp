// Instantiation-based DQBF solver — our comparator standing in for iDQ [16].
//
// iDQ decides DQBF by instantiating the matrix into ground SAT problems in
// the style of Inst-Gen [17].  We implement the same algorithmic family as
// counterexample-guided expansion:
//
//   A := {}                         // set of universal assignments
//   loop:
//     F_A := clauses instantiated under every sigma in A, each existential
//            y renamed to the copy y_{sigma|D_y}
//     if F_A is UNSAT           -> the DQBF is UNSAT (F_A is implied)
//     else take the model as a partial Skolem table (unseen entries: 0)
//       and SAT-search a universal assignment falsifying the matrix under it
//     if none exists            -> SAT (the table is a Skolem certificate)
//     else add the counterexample to A (strictly new, so <= 2^n iterations)
//
// Like iDQ it decides some instances with very few (even one) SAT calls and
// degrades when many instantiations are needed — the qualitative behaviour
// Table I and Fig. 4 compare HQS against.
#pragma once

#include <cstddef>
#include <optional>

#include "src/base/result.hpp"
#include "src/base/timer.hpp"
#include "src/dqbf/dqbf_formula.hpp"
#include "src/dqbf/skolem.hpp"

namespace hqs {

struct IdqOptions {
    Deadline deadline = Deadline::unlimited();
    /// Proxy for the paper's 8 GB memout: abort when the ground instance
    /// exceeds this many instantiated clauses (0 = unlimited).
    std::size_t groundClauseLimit = 0;
};

struct IdqStats {
    std::size_t iterations = 0;          ///< CEGAR refinement rounds
    std::size_t instantiations = 0;      ///< universal assignments in A
    std::size_t groundClauses = 0;       ///< clauses in the ground instance
    std::size_t existentialCopies = 0;   ///< distinct y_tau copies created
};

class IdqSolver {
public:
    explicit IdqSolver(IdqOptions opts = {}) : opts_(opts) {}

    SolveResult solve(const DqbfFormula& f);

    const IdqStats& stats() const { return stats_; }

    /// After solve() returned Sat: the Skolem certificate induced by the
    /// final candidate table (validated by the last counterexample check).
    const std::optional<SkolemCertificate>& certificate() const { return certificate_; }

private:
    IdqOptions opts_;
    IdqStats stats_;
    std::optional<SkolemCertificate> certificate_;
};

} // namespace hqs
