#include "src/idq/idq_solver.hpp"

#include <map>
#include <unordered_map>

#include "src/aig/aig.hpp"
#include "src/aig/cnf_bridge.hpp"
#include "src/sat/sat_solver.hpp"

namespace hqs {
namespace {

using Assignment = std::vector<bool>; // indexed by universal position

} // namespace

SolveResult IdqSolver::solve(const DqbfFormula& f)
{
    stats_ = IdqStats{};
    certificate_.reset();
    const std::vector<Var>& universals = f.universals();
    const std::size_t n = universals.size();
    std::unordered_map<Var, std::size_t> universalPos;
    for (std::size_t i = 0; i < n; ++i) universalPos.emplace(universals[i], i);

    if (f.matrix().hasEmptyClause()) return SolveResult::Unsat;

    auto depsOf = [&](Var v) -> const std::vector<Var>& {
        static const std::vector<Var> kEmpty;
        return f.isExistential(v) ? f.dependencies(v) : kEmpty;
    };

    // Ground instance (grows monotonically).
    SatSolver ground;
    std::map<std::pair<Var, Assignment>, Var> copyVar; // (y, tau) -> SAT var
    auto copyOf = [&](Var y, Assignment tau) {
        auto [it, inserted] = copyVar.try_emplace({y, std::move(tau)}, 0);
        if (inserted) {
            it->second = ground.newVar();
            ++stats_.existentialCopies;
        }
        return it->second;
    };

    auto restriction = [&](const Assignment& sigma, const std::vector<Var>& deps) {
        Assignment tau(deps.size());
        for (std::size_t i = 0; i < deps.size(); ++i) tau[i] = sigma[universalPos.at(deps[i])];
        return tau;
    };

    /// Instantiate every matrix clause under sigma into the ground solver.
    /// Returns false if the ground instance became trivially UNSAT.
    auto instantiate = [&](const Assignment& sigma) {
        ++stats_.instantiations;
        bool ok = true;
        for (const Clause& c : f.matrix()) {
            std::vector<Lit> inst;
            bool satisfied = false;
            for (Lit l : c) {
                auto pos = universalPos.find(l.var());
                if (pos != universalPos.end()) {
                    if (sigma[pos->second] != l.negative()) {
                        satisfied = true;
                        break;
                    }
                    continue;
                }
                inst.push_back(Lit(copyOf(l.var(), restriction(sigma, depsOf(l.var()))),
                                   l.negative()));
            }
            if (!satisfied) {
                ++stats_.groundClauses;
                ok = ground.addClause(std::move(inst)) && ok;
            }
        }
        return ok;
    };

    // Matrix as an AIG over universal + existential variables, used by the
    // counterexample search.
    Aig aig;
    AigEdge matrixAig = buildFromCnf(aig, f.matrix());

    /// On Sat: turn the final candidate table into an explicit certificate
    /// (unseen rows keep the default value false, matching the candidate
    /// the counterexample check just validated).
    auto buildCertificate = [&]() {
        SkolemCertificate cert;
        std::unordered_map<Var, std::size_t> indexOf;
        auto functionFor = [&](Var y) -> SkolemFunction& {
            auto [it, inserted] = indexOf.try_emplace(y, cert.functions.size());
            if (inserted) {
                SkolemFunction fn;
                fn.var = y;
                fn.deps = depsOf(y);
                fn.table.assign(1ull << fn.deps.size(), false);
                cert.functions.push_back(std::move(fn));
            }
            return cert.functions[it->second];
        };
        for (Var y : f.existentials()) functionFor(y);
        for (Var v = 0; v < f.matrix().numVars(); ++v) {
            if (f.kindOf(v) == DqbfVarKind::Unquantified) functionFor(v);
        }
        for (const auto& [key, satVar] : copyVar) {
            const auto& [y, tau] = key;
            SkolemFunction& fn = functionFor(y);
            std::size_t idx = 0;
            for (std::size_t i = 0; i < tau.size(); ++i) {
                if (tau[i]) idx |= 1ull << i;
            }
            fn.table[idx] = ground.modelValue(satVar).isTrue();
        }
        certificate_ = std::move(cert);
    };

    std::map<Assignment, bool> seen; // the set A
    for (;;) {
        ++stats_.iterations;
        if (opts_.deadline.expired()) return deadlineExceededResult(opts_.deadline);
        if (opts_.groundClauseLimit != 0 && stats_.groundClauses > opts_.groundClauseLimit) {
            return SolveResult::Memout;
        }

        const SolveResult groundRes = ground.solve({}, opts_.deadline);
        if (groundRes == SolveResult::Timeout || groundRes == SolveResult::Memout) return groundRes;
        if (groundRes == SolveResult::Unsat) return SolveResult::Unsat;

        // Candidate Skolem table from the ground model; unseen entries
        // default to false.  Build val_y(sigma) = OR over true table rows of
        // "sigma|D_y == tau".
        Substitution& skolemOf = aig.scratchSubstitution();
        for (Var y : f.existentials()) skolemOf.set(y, aig.constFalse());
        for (Var v = 0; v < f.matrix().numVars(); ++v) {
            if (f.kindOf(v) == DqbfVarKind::Unquantified) {
                skolemOf.set(v, aig.constFalse());
            }
        }
        for (const auto& [key, satVar] : copyVar) {
            if (!ground.modelValue(satVar).isTrue()) continue;
            const auto& [y, tau] = key;
            const auto& deps = depsOf(y);
            AigEdge match = aig.constTrue();
            for (std::size_t i = 0; i < deps.size(); ++i) {
                match = aig.mkAnd(match, aig.variable(deps[i]) ^ !tau[i]);
            }
            skolemOf.set(y, aig.mkOr(skolemOf.image(y), match));
        }

        // Counterexample search: a universal assignment falsifying the
        // matrix under the candidate table.
        const AigEdge instantiated = aig.substitute(matrixAig, skolemOf);
        const AigEdge cexCondition = ~instantiated;
        if (aig.isConstant(cexCondition) && !aig.constantValue(cexCondition)) {
            buildCertificate(); // matrix is a tautology under the table
            return SolveResult::Sat;
        }

        SatSolver cexSat;
        AigCnfBridge bridge(aig, cexSat);
        const Lit cexLit = bridge.litFor(cexCondition);
        const SolveResult cexRes = cexSat.solve({cexLit}, opts_.deadline);
        if (cexRes == SolveResult::Timeout || cexRes == SolveResult::Memout) return cexRes;
        if (cexRes == SolveResult::Unsat) {
            buildCertificate();
            return SolveResult::Sat;
        }

        Assignment sigma(n, false);
        for (std::size_t i = 0; i < n; ++i) {
            if (aig.hasVariable(universals[i])) {
                sigma[i] = cexSat.modelValue(bridge.satVarForInput(universals[i])).isTrue();
            }
        }
        if (seen.contains(sigma)) {
            // Cannot happen for a genuine counterexample; fail safe.
            return SolveResult::Unknown;
        }
        seen.emplace(sigma, true);
        if (!instantiate(sigma)) return SolveResult::Unsat;

        // The per-iteration Skolem expressions are garbage now.
        if (aig.numNodes() > 4 * aig.coneSize(matrixAig) + 50000) {
            aig.garbageCollect({&matrixAig});
        }
    }
}

} // namespace hqs
