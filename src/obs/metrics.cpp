#include "src/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace hqs::obs {
namespace {

struct MetricInfo {
    std::string name;
    MetricKind kind;
    std::uint32_t cell;
};

/// Process-wide name -> id intern table.  Locked only at registration and
/// snapshot time, never on the metric update path.
struct InternTable {
    std::mutex mu;
    std::unordered_map<std::string, MetricId> byName;
    std::vector<MetricInfo> infos;
    std::uint32_t nextCell = 0;

    static InternTable& instance()
    {
        static InternTable t;
        return t;
    }
};

std::uint32_t cellsFor(MetricKind kind)
{
    return kind == MetricKind::Histogram ? kHistogramCells : 1;
}

} // namespace

const char* toString(MetricKind k)
{
    switch (k) {
        case MetricKind::Counter: return "counter";
        case MetricKind::Gauge: return "gauge";
        case MetricKind::Histogram: return "histogram";
    }
    return "invalid";
}

MetricId metric(const std::string& name, MetricKind kind)
{
    InternTable& t = InternTable::instance();
    std::lock_guard<std::mutex> lock(t.mu);
    auto it = t.byName.find(name);
    if (it != t.byName.end()) {
        if (it->second.kind != kind) {
            throw std::logic_error("metric '" + name + "' re-registered as " +
                                   toString(kind) + ", was " + toString(it->second.kind));
        }
        return it->second;
    }
    if (t.nextCell + cellsFor(kind) > kMaxCells) {
        throw std::length_error("metric cell table full registering '" + name + "'");
    }
    const MetricId id{t.nextCell, kind};
    t.nextCell += cellsFor(kind);
    t.byName.emplace(name, id);
    t.infos.push_back({name, kind, id.cell});
    return id;
}

Registry::Registry() : cells_(new std::atomic<std::int64_t>[kMaxCells])
{
    for (std::uint32_t i = 0; i < kMaxCells; ++i)
        cells_[i].store(0, std::memory_order_relaxed);
}

std::uint32_t Registry::bucketIndex(std::int64_t value)
{
    if (value <= 0) return 0;
    const unsigned width = std::bit_width(static_cast<std::uint64_t>(value));
    return std::min(width, kHistogramBuckets - 1);
}

std::vector<MetricValue> Registry::snapshot(bool skipZero) const
{
    std::vector<MetricInfo> infos;
    {
        InternTable& t = InternTable::instance();
        std::lock_guard<std::mutex> lock(t.mu);
        infos = t.infos;
    }
    std::vector<MetricValue> out;
    out.reserve(infos.size());
    for (const MetricInfo& info : infos) {
        MetricValue v;
        v.name = info.name;
        v.kind = info.kind;
        if (info.kind == MetricKind::Histogram) {
            const std::atomic<std::int64_t>* h = &cells_[info.cell];
            v.count = h[0].load(std::memory_order_relaxed);
            v.sum = h[1].load(std::memory_order_relaxed);
            v.max = h[2].load(std::memory_order_relaxed);
            for (std::uint32_t b = 0; b < kHistogramBuckets; ++b)
                v.buckets[b] = h[3 + b].load(std::memory_order_relaxed);
            v.value = v.count;
            if (skipZero && v.count == 0) continue;
        } else {
            v.value = cells_[info.cell].load(std::memory_order_relaxed);
            if (skipZero && v.value == 0) continue;
        }
        out.push_back(std::move(v));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
    return out;
}

void Registry::mergeInto(Registry& dst) const
{
    std::vector<MetricInfo> infos;
    {
        InternTable& t = InternTable::instance();
        std::lock_guard<std::mutex> lock(t.mu);
        infos = t.infos;
    }
    for (const MetricInfo& info : infos) {
        if (info.kind == MetricKind::Gauge) {
            dst.setMax({info.cell, info.kind},
                       cells_[info.cell].load(std::memory_order_relaxed));
            continue;
        }
        // Counters and every histogram cell except the max accumulate by
        // addition; the histogram max cell merges by max.
        const std::uint32_t n = cellsFor(info.kind);
        for (std::uint32_t i = 0; i < n; ++i) {
            const std::int64_t v = cells_[info.cell + i].load(std::memory_order_relaxed);
            if (info.kind == MetricKind::Histogram && i == 2) {
                dst.setMax({info.cell + i, MetricKind::Gauge}, v);
            } else if (v != 0) {
                dst.cells_[info.cell + i].fetch_add(v, std::memory_order_relaxed);
            }
        }
    }
}

void Registry::reset()
{
    for (std::uint32_t i = 0; i < kMaxCells; ++i)
        cells_[i].store(0, std::memory_order_relaxed);
}

Registry& globalRegistry()
{
    static Registry* r = new Registry(); // leaked: outlives every static dtor
    return *r;
}

} // namespace hqs::obs
