// Metrics registry: named counters, gauges, and histograms behind
// near-zero-cost operations (relaxed atomics, same budget discipline as the
// fault.hpp checkpoints).
//
// Metric *names* are interned process-wide into a MetricId exactly once (a
// mutex-protected table, hit only at first use per call site); metric
// *values* live in a Registry — a flat table of atomic cells indexed by the
// id.  An update is therefore one thread-local read plus one relaxed atomic
// RMW, cheap enough for hot paths like AIG node allocation.
//
// Registries stack: the thread-local "current" registry defaults to the
// process-wide global one, a MetricScope pushes a fresh local registry for
// one unit of work (one batch job, one solve) and merges it into its parent
// when the scope closes, and BindRegistry routes a worker thread into a
// scope owned by another thread (the portfolio racer pattern).  All cell
// operations are plain atomics, so concurrent writers, readers, and merges
// need no further synchronization.
//
// Kinds:
//   Counter    add(delta)          monotonic sum
//   Gauge      setMax(value)       high-water mark (peak AIG nodes, peak RSS)
//   Histogram  observe(value)      count/sum/max + 16 log2 buckets
//
// Use through the OBS_* macros in obs.hpp, which compile to nothing under
// -DHQS_OBS=OFF.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hqs::obs {

enum class MetricKind { Counter, Gauge, Histogram };

const char* toString(MetricKind k);

/// Interned handle for one named metric: the first cell of its block in any
/// Registry's cell table, plus the kind (fixed at first registration).
struct MetricId {
    std::uint32_t cell = 0;
    MetricKind kind = MetricKind::Counter;
};

inline constexpr std::uint32_t kHistogramBuckets = 16;
/// Histogram cell block layout: [count, sum, max, bucket0..bucket15].
inline constexpr std::uint32_t kHistogramCells = 3 + kHistogramBuckets;
/// Cell capacity of every Registry.  Exceeding it (hundreds of distinct
/// histograms) throws at registration time, never on the update path.
inline constexpr std::uint32_t kMaxCells = 4096;

/// Intern @p name, registering it on first use.  Throws std::logic_error on
/// a kind mismatch with an earlier registration and std::length_error when
/// the cell table is full.  Thread-safe; call-site macros cache the result
/// in a function-local static so the table lock is paid once per site.
MetricId metric(const std::string& name, MetricKind kind);

/// One metric's value as captured by Registry::snapshot().
struct MetricValue {
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::int64_t value = 0; ///< counter sum / gauge high-water mark
    // Histogram-only fields.
    std::int64_t count = 0;
    std::int64_t sum = 0;
    std::int64_t max = 0;
    std::array<std::int64_t, kHistogramBuckets> buckets{};
};

/// A flat table of atomic cells holding the values of every interned
/// metric.  All operations are thread-safe and lock-free.
class Registry {
public:
    Registry();

    void add(MetricId id, std::int64_t delta)
    {
        cells_[id.cell].fetch_add(delta, std::memory_order_relaxed);
    }

    /// Gauge update with high-water-mark semantics.
    void setMax(MetricId id, std::int64_t value) { cellMax(cells_[id.cell], value); }

    /// Gauge update with last-writer-wins semantics (live level, not peak).
    void set(MetricId id, std::int64_t value)
    {
        cells_[id.cell].store(value, std::memory_order_relaxed);
    }

    void observe(MetricId id, std::int64_t value)
    {
        std::atomic<std::int64_t>* h = &cells_[id.cell];
        h[0].fetch_add(1, std::memory_order_relaxed);
        h[1].fetch_add(value, std::memory_order_relaxed);
        cellMax(h[2], value);
        h[3 + bucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    }

    /// Counter sum / gauge high-water mark; a histogram's observation count.
    std::int64_t value(MetricId id) const
    {
        return cells_[id.cell].load(std::memory_order_relaxed);
    }

    /// Histogram sum (0 for other kinds' ids).
    std::int64_t histogramSum(MetricId id) const
    {
        if (id.kind != MetricKind::Histogram) return 0;
        return cells_[id.cell + 1].load(std::memory_order_relaxed);
    }

    /// Every interned metric with its current value in this registry,
    /// sorted by name.  Metrics that were never touched report zeros; pass
    /// @p skipZero to drop them (the common want for reports).
    std::vector<MetricValue> snapshot(bool skipZero = true) const;

    /// Accumulate this registry's cells into @p dst (counters and histogram
    /// cells add; gauges take the max).
    void mergeInto(Registry& dst) const;

    void reset();

    /// Log2 bucket of @p value: bucket i counts values in [2^(i-1), 2^i),
    /// clamped into the table; negatives land in bucket 0.
    static std::uint32_t bucketIndex(std::int64_t value);

private:
    static void cellMax(std::atomic<std::int64_t>& cell, std::int64_t value)
    {
        std::int64_t cur = cell.load(std::memory_order_relaxed);
        while (value > cur &&
               !cell.compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
        }
    }

    std::unique_ptr<std::atomic<std::int64_t>[]> cells_;
};

/// The process-wide registry that everything merges into by default.
Registry& globalRegistry();

namespace detail {
// Inline so hot-path accesses compile to a direct TLS slot read instead of
// a call through the cross-TU thread_local wrapper.
inline thread_local Registry* tlCurrentRegistry = nullptr;
} // namespace detail

/// The registry OBS_* updates on this thread land in: the innermost
/// MetricScope / BindRegistry, or the global registry.
inline Registry& currentRegistry()
{
    Registry* r = detail::tlCurrentRegistry;
    return r ? *r : globalRegistry();
}

/// Route this thread's metric updates into an existing registry owned
/// elsewhere, without merge-on-exit (the target *is* the accumulator).
/// Used by worker threads executing one logical task on behalf of a scope
/// on another thread — e.g. portfolio racers writing into the solve's
/// MetricScope.
class BindRegistry {
public:
    explicit BindRegistry(Registry& r) : prev_(detail::tlCurrentRegistry)
    {
        detail::tlCurrentRegistry = &r;
    }
    ~BindRegistry() { detail::tlCurrentRegistry = prev_; }
    BindRegistry(const BindRegistry&) = delete;
    BindRegistry& operator=(const BindRegistry&) = delete;

private:
    Registry* prev_;
};

/// A fresh registry for one unit of work on the current thread.  While the
/// scope is open all OBS_* updates from this thread (and from threads bound
/// to it via BindRegistry) accumulate locally, readable through value() /
/// snapshot(); when it closes everything is merged into the enclosing
/// scope — or the global registry — so process totals still add up.
class MetricScope {
public:
    MetricScope() : prev_(detail::tlCurrentRegistry)
    {
        detail::tlCurrentRegistry = &local_;
    }
    ~MetricScope()
    {
        detail::tlCurrentRegistry = prev_;
        local_.mergeInto(prev_ ? *prev_ : globalRegistry());
    }
    MetricScope(const MetricScope&) = delete;
    MetricScope& operator=(const MetricScope&) = delete;

    Registry& registry() { return local_; }
    std::int64_t value(MetricId id) const { return local_.value(id); }
    std::vector<MetricValue> snapshot(bool skipZero = true) const
    {
        return local_.snapshot(skipZero);
    }

private:
    Registry local_;
    Registry* prev_;
};

} // namespace hqs::obs
