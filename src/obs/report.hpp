// Machine-readable reporting: DIMACS-safe stat lines, metrics-registry JSON,
// and the schema-versioned bench reports (BENCH_table1.json /
// BENCH_micro.json) written by the `bench_report` target.
//
// All JSON here is hand-rolled through JsonWriter — deterministic key order
// and formatting, so the golden-file tests can compare byte-for-byte.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/metrics.hpp"

namespace hqs::obs {

/// Minimal streaming JSON writer with stable, pretty-printed output
/// (2-space indent, "%.6g" doubles).  The caller supplies structure; the
/// writer supplies commas, quoting, and escaping.
class JsonWriter {
public:
    explicit JsonWriter(std::ostream& os) : os_(os) {}

    JsonWriter& beginObject();
    JsonWriter& endObject();
    JsonWriter& beginArray();
    JsonWriter& endArray();
    JsonWriter& key(const std::string& k);
    JsonWriter& value(const std::string& v);
    JsonWriter& value(const char* v);
    JsonWriter& value(double v);
    JsonWriter& value(std::int64_t v);
    JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(unsigned v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(std::uint64_t v) { return value(static_cast<std::int64_t>(v)); }
    JsonWriter& value(bool v);

    static std::string escape(const std::string& s);

private:
    struct Level {
        bool array;
        int count;
    };
    void beforeValue();
    void newlineIndent();

    std::ostream& os_;
    std::vector<Level> stack_;
    bool pendingKey_ = false;
};

/// Print one `c stat <name> <value>` line per metric — safe to interleave
/// with DIMACS/QDIMACS output, which treats 'c' lines as comments.
/// Histograms expand to `<name>.count`, `<name>.sum`, and `<name>.max`.
void writeStatLines(std::ostream& os, const std::vector<MetricValue>& metrics);

/// JSON object mapping metric name to value; histograms become
/// {"count":..,"sum":..,"max":..,"buckets":[..]} with trailing zero buckets
/// trimmed.  Used for the per-instance "metrics" blocks in bench reports.
void writeMetricsJson(JsonWriter& w, const std::vector<MetricValue>& metrics);
void writeMetricsJson(std::ostream& os, const std::vector<MetricValue>& metrics);

/// Render @p metrics in the Prometheus text exposition format (the solver
/// service's GET /metrics payload).  Names are prefixed "hqs_" and every
/// character outside [a-zA-Z0-9_] becomes '_'; counters and gauges emit one
/// sample, histograms emit cumulative `_bucket{le="..."}` samples at the
/// log2 bucket upper bounds plus `_sum` and `_count`.  Deterministic output
/// (metrics arrive sorted from Registry::snapshot).
void writePrometheusText(std::ostream& os, const std::vector<MetricValue>& metrics);

/// Prometheus-safe name for one metric: "hqs_" + sanitized @p name.
std::string prometheusName(const std::string& name);

/// Upper-bound estimate of the @p q quantile (0 < q <= 1) of a log2
/// histogram MetricValue: the upper edge of the bucket holding the rank,
/// clamped to the observed max (exact for the top bucket).  Returns 0 for
/// an empty histogram or a non-histogram value.
double histogramQuantile(const MetricValue& h, double q);

// ---------------------------------------------------------------------------
// BENCH_service.json  (schema "hqs-bench-service/v4")
// ---------------------------------------------------------------------------

/// Latency quantiles in microseconds, distilled from a log2 histogram via
/// histogramQuantile.
struct BenchServiceLatency {
    double p50Us = 0;
    double p90Us = 0;
    double p99Us = 0;
    double maxUs = 0;
    double meanUs = 0;
};

BenchServiceLatency latencyFromHistogram(const MetricValue& h);

struct BenchServiceReport {
    // Load parameters.
    int connections = 0;
    int requests = 0;
    std::uint64_t maxInflight = 0;
    std::uint64_t maxQueue = 0;
    bool jsonlMode = false;
    /// Supervised worker processes serving the run; 0 = in-process service
    /// (no fleet, the PR-4-compatible baseline row).
    int workers = 0;
    /// Row ran with the result cache enabled: the repeated workload is
    /// answered from the cache after the first solve.
    bool cacheEnabled = false;

    // Outcome counts: every request resolved into exactly one of these.
    int ok = 0;
    int rejected = 0; ///< 429 / busy rows
    int errors = 0;   ///< transport failures, non-2xx other than 429
    /// Client re-sent attempts: fleet rows ride through worker startup and
    /// respawn windows on the bounded-retry path.
    std::uint64_t retries = 0;

    double wallMs = 0;
    double throughputRps = 0;
    BenchServiceLatency latency; ///< client-observed request latency
    /// Requests answered from the result cache (0 on fleet rows: the
    /// counters live in the forked workers).
    std::uint64_t cacheHits = 0;

    // Session matrix (v4): cold vs session-reuse over a delta family.
    /// Row solved its workload through one open session (`open` + delta
    /// solves) instead of independent stateless requests.
    bool sessionMode = false;
    /// Number of instances in the delta family the row solved (0 = not a
    /// session-matrix row; the plain throughput rows leave this unset).
    int deltaFamily = 0;
    /// session.reuse over the run: connected components answered from the
    /// session's per-component memo instead of re-elimination.
    std::uint64_t sessionReuses = 0;
    /// session.cone_nodes_saved over the run: AIG nodes of the reused cones
    /// that were never rebuilt.
    std::uint64_t coneNodesSaved = 0;

    /// Registry snapshot of the run (service.* counters, solve latency).
    /// Empty on fleet rows: the solves happen in forked workers, whose
    /// registries die with them.
    std::vector<MetricValue> metrics;
};

/// v4 report: one entry in "runs":[...] per (fleet size, cache) cell plus
/// the session matrix (cold vs session-reuse over a delta family).
void writeBenchServiceJson(std::ostream& os,
                           const std::vector<BenchServiceReport>& runs);

// ---------------------------------------------------------------------------
// BENCH_table1.json  (schema "hqs-bench-table1/v3")
// ---------------------------------------------------------------------------

/// One solver's cells of a Table I row.
struct BenchSolverCells {
    int sat = 0;
    int unsat = 0;
    int timeout = 0;
    int memout = 0;
    double commonMs = 0; ///< total time on instances solved by both solvers
};

struct BenchFamilyRow {
    std::string family;
    int instances = 0;
    BenchSolverCells hqs;
    BenchSolverCells idq;
    int wrongResults = 0;
};

/// One instance's certification cells of the v2 report: whether a Skolem
/// certificate was extracted for the HQS verdict, whether the independent
/// checker accepted it, and what it cost.  All-default on UNSAT/unresolved
/// instances (certified stays false).
struct BenchInstanceRow {
    std::string name;       ///< instance file stem
    std::string family;     ///< family the instance was benched under
    std::string hqsResult;  ///< "SAT", "UNSAT", ...
    bool certified = false; ///< a certificate was extracted
    bool certValid = false; ///< the independent checker accepted it
    double certExtractMs = 0;      ///< extraction + serialization
    double certCheckMs = 0;        ///< independent check (one SAT call)
    std::int64_t certSizeNodes = 0; ///< AND nodes across the function cones
    /// v3: engine family (api::engineFamily) of the racer that won this
    /// instance's portfolio race ("" when the race was inconclusive).
    std::string portfolioWinnerFamily;
};

struct BenchTable1Report {
    // Suite parameters (the scaled-down regime the numbers were produced in).
    double timeoutSeconds = 0;
    std::uint64_t hqsNodeLimit = 0;
    std::uint64_t idqGroundClauseLimit = 0;

    std::vector<BenchFamilyRow> families; ///< per-family rows + computed total
    /// v2: per-instance certification outcomes (one row per benched
    /// instance, in bench order).
    std::vector<BenchInstanceRow> instances;
    /// v3: per-engine-family portfolio columns, in sorted family order.
    /// "solved" counts instances where a racer of that family reached a
    /// conclusive verdict before the race cancelled it; "wins" counts the
    /// races that family's racer decided.
    std::vector<std::pair<std::string, int>> familySolved;
    std::vector<std::pair<std::string, int>> familyWins;

    // Section IV aggregates.
    int hqsSolvedTotal = 0;
    int idqSolvedTotal = 0;
    int solvedUnderOneSecond = 0;
    int hqsOnlySolved = 0;
    double maxMaxSatMs = 0;
    double unitPureShareMax = 0;
    int wrongResults = 0;

    /// Registry snapshot of the whole run (phase timings, eliminations, ...).
    std::vector<MetricValue> metrics;
};

void writeBenchTable1Json(std::ostream& os, const BenchTable1Report& report);

// ---------------------------------------------------------------------------
// BENCH_micro.json  (schema "hqs-bench-micro/v1")
// ---------------------------------------------------------------------------

struct BenchMicroRow {
    std::string name; ///< full benchmark name, e.g. "BM_AigConstruction/1000"
    std::int64_t iterations = 0;
    double realNs = 0; ///< mean wall time per iteration
    double cpuNs = 0;  ///< mean CPU time per iteration
    double itemsPerSecond = 0; ///< 0 when the benchmark reports none
};

struct BenchMicroReport {
    std::vector<BenchMicroRow> benchmarks;
    /// Named per-operation overhead costs distilled from the rows
    /// (span_disarmed_ns, counter_add_ns, checkpoint_disarmed_ns, ...).
    std::vector<std::pair<std::string, double>> overheadNs;
};

void writeBenchMicroJson(std::ostream& os, const BenchMicroReport& report);

} // namespace hqs::obs
