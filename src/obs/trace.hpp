// Span tracer: RAII scopes recording wall-clock intervals into lock-free
// per-thread buffers, exported as Chrome trace_event JSON so a whole
// portfolio race is viewable in Perfetto / chrome://tracing.
//
// A SpanScope stamps the start time on construction and appends one
// SpanRecord to its thread's buffer on destruction.  Buffers are
// single-producer chunk lists: the owning thread appends wait-free and
// publishes each record with a release store of the chunk count, so
// writeChromeTrace() — called after the traced work completes — observes
// fully written records without ever locking a writer.
//
// Tracing is off by default; a disarmed SpanScope costs a few thread-local
// pointer writes and one relaxed atomic load (no clock reads, no buffer
// traffic), cheap enough to leave span scopes in the pipeline permanently.
// Even disarmed, scopes maintain the per-thread stack of open spans, which
// the guard layer uses to tag FailureInfo records with the innermost span
// an exception unwound out of (see deathSite()).
#pragma once

#include <atomic>
#include <cstdint>
#include <exception>
#include <iosfwd>

namespace hqs::obs {

/// Span names longer than this are truncated in the exported trace.
inline constexpr std::size_t kSpanNameCapacity = 48;
inline constexpr std::uint32_t kSpanMaxArgs = 3;

/// One closed span, as stored in the per-thread trace buffers.
struct SpanRecord {
    char name[kSpanNameCapacity];
    std::uint64_t startNs = 0;
    std::uint64_t durNs = 0;
    std::uint32_t tid = 0;   ///< small per-thread ordinal, not the OS tid
    std::uint32_t depth = 0; ///< nesting depth at record time (root = 0)
    const char* argKey[kSpanMaxArgs] = {nullptr, nullptr, nullptr};
    std::int64_t argVal[kSpanMaxArgs] = {0, 0, 0};
    std::uint32_t numArgs = 0;
};

class SpanScope;

namespace detail {
extern std::atomic<bool> tracingOn;
/// Monotonic nanoseconds since the process trace epoch.
std::uint64_t nowNs();
void record(const SpanRecord& r);
std::uint32_t threadOrdinal();
/// Out-of-line copy of @p name into tlDeathSite (keeps <cstring> out of the
/// inline destructor).
void noteDeathSite(const char* name) noexcept;
// Inline thread_locals so the SpanScope fast path compiles to direct TLS
// slot accesses instead of calls through cross-TU thread_local wrappers.
inline thread_local SpanScope* tlOpenSpan = nullptr;
inline thread_local char tlDeathSite[kSpanNameCapacity] = {};

/// Cached address of this thread's uncaught-exception counter inside the
/// C++ runtime's per-thread EH globals (Itanium ABI).  std::
/// uncaught_exceptions() is a ~6 ns libstdc++ call and a SpanScope needs
/// the count twice (entry and exit); through the cached pointer each query
/// is a single load, which is what keeps a disarmed span in the
/// single-digit-ns budget.  Null until the first query on this thread.
inline thread_local const unsigned int* tlUncaughtPtr = nullptr;
/// First-call path of uncaughtExceptions(): resolves and caches the counter
/// address, or falls back to std::uncaught_exceptions() when the runtime's
/// layout does not match the Itanium ABI.
int uncaughtExceptionsSlow() noexcept;

inline int uncaughtExceptions() noexcept
{
    if (const unsigned int* p = tlUncaughtPtr) return static_cast<int>(*p);
    return uncaughtExceptionsSlow();
}
} // namespace detail

/// Turn span recording on/off.  Records survive toggling; clearTrace()
/// drops them.
void enableTracing(bool on);
inline bool tracingEnabled()
{
    return detail::tracingOn.load(std::memory_order_relaxed);
}

/// Drop every recorded span.  Only call while no traced work is in flight
/// (between runs / in tests): buffers of live threads are reset in place.
void clearTrace();

/// Number of recorded (closed) spans across all threads.
std::size_t traceSpanCount();

/// Export all recorded spans in Chrome trace_event JSON ("X" complete
/// events, microsecond timestamps).  Loadable by Perfetto and
/// chrome://tracing.
void writeChromeTrace(std::ostream& os);

class SpanScope;

/// Innermost open span on the calling thread ("" when none).
const char* currentSpanName();

/// The innermost span an exception unwound out of on this thread since the
/// last clearDeathSite() — the guard layer stamps this into
/// FailureInfo.site when the exception itself carries no site.
const char* deathSite();
void clearDeathSite();

/// RAII traced scope.  @p name must outlive the scope (a string literal, or
/// a buffer that lives at least as long — the exported record holds a
/// copy).  Construction order defines nesting; scopes must close on the
/// thread that opened them.
class SpanScope {
public:
    explicit SpanScope(const char* name) noexcept
        : name_(name),
          parent_(detail::tlOpenSpan),
          startNs_(0),
          depth_(parent_ ? parent_->depth_ + 1 : 0),
          uncaughtOnEntry_(detail::uncaughtExceptions())
    {
        detail::tlOpenSpan = this;
        if (detail::tracingOn.load(std::memory_order_relaxed)) {
            startNs_ = detail::nowNs();
            if (startNs_ == 0) startNs_ = 1; // 0 is the "not tracing" sentinel
        }
    }

    ~SpanScope()
    {
        // During unwinding the innermost scope destructs first: the first
        // scope to notice a new exception names the span it died in.
        if (detail::uncaughtExceptions() > uncaughtOnEntry_ &&
            detail::tlDeathSite[0] == '\0')
            detail::noteDeathSite(name_);
        detail::tlOpenSpan = parent_;
        if (startNs_ != 0) close();
    }

    SpanScope(const SpanScope&) = delete;
    SpanScope& operator=(const SpanScope&) = delete;

    /// Attach a small integer argument, shown under "args" in the trace
    /// viewer.  Keys beyond kSpanMaxArgs are dropped; no-op while tracing
    /// is off.  @p key must be a string literal.
    void arg(const char* key, std::int64_t value) noexcept
    {
        if (startNs_ == 0 || numArgs_ >= kSpanMaxArgs) return;
        argKey_[numArgs_] = key;
        argVal_[numArgs_] = value;
        ++numArgs_;
    }

    const char* name() const { return name_; }

private:
    friend const char* currentSpanName();

    /// Slow path: build the SpanRecord and append it to this thread's
    /// buffer.  Only reached while tracing was on at construction.
    void close() noexcept;

    const char* name_;
    SpanScope* parent_;
    std::uint64_t startNs_; ///< 0 while tracing is off (no record on close)
    std::uint32_t depth_;
    int uncaughtOnEntry_;
    const char* argKey_[kSpanMaxArgs];
    std::int64_t argVal_[kSpanMaxArgs];
    std::uint32_t numArgs_ = 0;
};

/// Always-available no-op stand-in the OBS_* macros expand to under
/// -DHQS_OBS=OFF; accepts and ignores any constructor arguments.
struct NullSpan {
    template <typename... Args>
    explicit NullSpan(const Args&...) noexcept
    {
    }
    void arg(const char*, std::int64_t) noexcept {}
};

} // namespace hqs::obs
