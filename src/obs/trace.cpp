#include "src/obs/trace.hpp"

#include <chrono>
#include <cstring>
#include <exception>
#include <mutex>
#include <ostream>
#include <vector>

#if defined(__GLIBCXX__) || defined(_LIBCPP_VERSION)
// Not exposed by <cxxabi.h>; the Itanium C++ ABI entry point behind
// std::uncaught_exceptions().  See detail::uncaughtExceptionsSlow().
namespace __cxxabiv1 {
struct __cxa_eh_globals;
extern "C" __cxa_eh_globals* __cxa_get_globals() noexcept;
} // namespace __cxxabiv1
#endif

namespace hqs::obs {
namespace detail {

std::atomic<bool> tracingOn{false};

std::uint64_t nowNs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - epoch)
            .count());
}

namespace {

/// Fixed-size chunk of a single-producer trace buffer.  The owner thread
/// writes items[count] and then publishes with a release store of count;
/// readers load count with acquire and only touch published slots.
struct Chunk {
    static constexpr std::uint32_t kCapacity = 256;
    SpanRecord items[kCapacity];
    std::atomic<std::uint32_t> count{0};
    std::atomic<Chunk*> next{nullptr};
};

struct ThreadBuffer {
    Chunk head;
    Chunk* tail = &head; ///< owner thread only
};

/// All thread buffers ever created.  Buffers outlive their threads (the
/// records must survive a join) and are reclaimed only by clearTrace();
/// they are allocated lazily, on a thread's first *recorded* span, so
/// untraced runs allocate nothing.
struct BufferRegistry {
    std::mutex mu;
    std::vector<ThreadBuffer*> buffers;

    static BufferRegistry& instance()
    {
        static BufferRegistry* r = new BufferRegistry();
        return *r;
    }
};

thread_local ThreadBuffer* tlBuffer = nullptr;
std::atomic<std::uint32_t> nextThreadOrdinal{0};
thread_local std::uint32_t tlOrdinal = ~0u;

} // namespace

std::uint32_t threadOrdinal()
{
    if (tlOrdinal == ~0u)
        tlOrdinal = nextThreadOrdinal.fetch_add(1, std::memory_order_relaxed);
    return tlOrdinal;
}

void record(const SpanRecord& r)
{
    ThreadBuffer* buf = tlBuffer;
    if (!buf) {
        buf = new ThreadBuffer();
        BufferRegistry& reg = BufferRegistry::instance();
        std::lock_guard<std::mutex> lock(reg.mu);
        reg.buffers.push_back(buf);
        tlBuffer = buf;
    }
    Chunk* tail = buf->tail;
    std::uint32_t n = tail->count.load(std::memory_order_relaxed);
    if (n == Chunk::kCapacity) {
        Chunk* fresh = new Chunk();
        tail->next.store(fresh, std::memory_order_release);
        buf->tail = tail = fresh;
        n = 0;
    }
    tail->items[n] = r;
    tail->count.store(n + 1, std::memory_order_release);
}

} // namespace detail

void enableTracing(bool on)
{
    detail::nowNs(); // pin the trace epoch before the first span
    detail::tracingOn.store(on, std::memory_order_relaxed);
}

void clearTrace()
{
    using detail::Chunk;
    detail::BufferRegistry& reg = detail::BufferRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (detail::ThreadBuffer* buf : reg.buffers) {
        // Live threads keep their (reset) head chunk; overflow chunks die.
        Chunk* overflow = buf->head.next.exchange(nullptr, std::memory_order_acquire);
        while (overflow) {
            Chunk* next = overflow->next.load(std::memory_order_acquire);
            delete overflow;
            overflow = next;
        }
        buf->tail = &buf->head;
        buf->head.count.store(0, std::memory_order_release);
    }
}

namespace {

template <typename Fn>
void forEachRecord(Fn&& fn)
{
    using detail::Chunk;
    detail::BufferRegistry& reg = detail::BufferRegistry::instance();
    std::lock_guard<std::mutex> lock(reg.mu);
    for (detail::ThreadBuffer* buf : reg.buffers) {
        for (Chunk* c = &buf->head; c; c = c->next.load(std::memory_order_acquire)) {
            const std::uint32_t n = c->count.load(std::memory_order_acquire);
            for (std::uint32_t i = 0; i < n; ++i) fn(c->items[i]);
        }
    }
}

} // namespace

std::size_t traceSpanCount()
{
    std::size_t n = 0;
    forEachRecord([&](const SpanRecord&) { ++n; });
    return n;
}

void writeChromeTrace(std::ostream& os)
{
    os << "{\"displayTimeUnit\":\"ms\",\"otherData\":{\"schema\":\"hqs-trace/v1\"},"
          "\"traceEvents\":[";
    bool first = true;
    forEachRecord([&](const SpanRecord& r) {
        if (!first) os << ',';
        first = false;
        os << "{\"name\":\"";
        for (const char* p = r.name; *p; ++p) {
            // Names are code-controlled identifiers; escape defensively.
            if (*p == '"' || *p == '\\') os << '\\';
            os << *p;
        }
        // Timestamps are microseconds (Chrome's unit); keep ns precision
        // via three decimals.
        os << "\",\"cat\":\"hqs\",\"ph\":\"X\",\"ts\":" << (r.startNs / 1000) << '.'
           << static_cast<char>('0' + (r.startNs % 1000) / 100)
           << static_cast<char>('0' + (r.startNs % 100) / 10)
           << static_cast<char>('0' + r.startNs % 10) << ",\"dur\":" << (r.durNs / 1000)
           << '.' << static_cast<char>('0' + (r.durNs % 1000) / 100)
           << static_cast<char>('0' + (r.durNs % 100) / 10)
           << static_cast<char>('0' + r.durNs % 10) << ",\"pid\":1,\"tid\":" << r.tid;
        if (r.numArgs > 0) {
            os << ",\"args\":{";
            for (std::uint32_t i = 0; i < r.numArgs; ++i) {
                if (i) os << ',';
                os << '"' << r.argKey[i] << "\":" << r.argVal[i];
            }
            os << '}';
        }
        os << '}';
    });
    os << "]}\n";
}

const char* currentSpanName()
{
    const SpanScope* top = detail::tlOpenSpan;
    return top ? top->name() : "";
}

const char* deathSite() { return detail::tlDeathSite; }

void clearDeathSite() { detail::tlDeathSite[0] = '\0'; }

namespace detail {

void noteDeathSite(const char* name) noexcept
{
    std::strncpy(tlDeathSite, name, kSpanNameCapacity - 1);
    tlDeathSite[kSpanNameCapacity - 1] = '\0';
}

int uncaughtExceptionsSlow() noexcept
{
#if defined(__GLIBCXX__) || defined(_LIBCPP_VERSION)
    // Itanium ABI: __cxa_eh_globals is { __cxa_exception* caughtExceptions;
    // unsigned int uncaughtExceptions; }.  __cxa_get_globals() allocates the
    // per-thread structure on first use, so the address is stable for the
    // thread's lifetime.  Verify against the standard call before caching —
    // on a runtime with a different layout we simply never cache and every
    // query takes the (correct, slower) standard path.
    const char* globals = reinterpret_cast<const char*>(__cxxabiv1::__cxa_get_globals());
    const auto* fast = reinterpret_cast<const unsigned int*>(globals + sizeof(void*));
    const int std_count = std::uncaught_exceptions();
    if (static_cast<int>(*fast) == std_count) {
        tlUncaughtPtr = fast;
        return std_count;
    }
#endif
    return std::uncaught_exceptions();
}

} // namespace detail

void SpanScope::close() noexcept
{
    SpanRecord r;
    std::strncpy(r.name, name_, kSpanNameCapacity - 1);
    r.name[kSpanNameCapacity - 1] = '\0';
    r.startNs = startNs_;
    r.durNs = detail::nowNs() - startNs_;
    r.tid = detail::threadOrdinal();
    r.depth = depth_;
    r.numArgs = numArgs_;
    for (std::uint32_t i = 0; i < numArgs_; ++i) {
        r.argKey[i] = argKey_[i];
        r.argVal[i] = argVal_[i];
    }
    detail::record(r);
}

} // namespace hqs::obs
