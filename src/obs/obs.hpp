// Observability macros: the one header instrumented code includes.
//
//   OBS_SPAN(var, "hqs.fraig");            // RAII trace span (trace.hpp)
//   var.arg("nodes_before", n);            // optional span arguments
//   OBS_PHASE(var, "hqs.preprocess", "phase.preprocess.us");
//                                          // span + duration counter
//   OBS_COUNT("hqs.elim.universal", 1);    // counter add
//   OBS_GAUGE_MAX("aig.peak_cone", cone);  // high-water-mark gauge
//   OBS_OBSERVE("pool.queue_latency_us", us); // histogram observation
//
// Cost discipline (same budget as the fault.hpp checkpoints):
//   * counters/gauges/histograms: one function-local-static guard load,
//     one thread-local read, one relaxed atomic RMW — a few ns, always on;
//   * spans: a few thread-local writes when tracing is off, two clock
//     reads and one buffer append when it is on;
//   * phase scopes: a span plus two clock reads and one counter add (phase
//     granularity only — never put one on a per-node path).
//
// Configure with -DHQS_OBS=OFF (CMake) to compile every macro to a no-op:
// arguments are not evaluated, no atomics, no clock reads.  The obs
// *runtime* (registry, tracer, reports) stays linkable either way, so code
// reading metrics does not need its own #ifdefs — with the macros off it
// simply sees empty registries and traces.
#pragma once

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

#ifndef HQS_OBS_ENABLED
#define HQS_OBS_ENABLED 1
#endif

namespace hqs::obs {

/// A SpanScope that additionally accumulates its wall-clock duration (in
/// microseconds) into a counter, so per-phase timing is available from the
/// metrics registry even when tracing is off.
class PhaseScope {
public:
    PhaseScope(const char* spanName, MetricId usCounter) noexcept
        : span_(spanName), id_(usCounter), startNs_(detail::nowNs())
    {
    }
    ~PhaseScope()
    {
        currentRegistry().add(
            id_, static_cast<std::int64_t>((detail::nowNs() - startNs_) / 1000));
    }
    PhaseScope(const PhaseScope&) = delete;
    PhaseScope& operator=(const PhaseScope&) = delete;

    void arg(const char* key, std::int64_t value) noexcept { span_.arg(key, value); }

private:
    SpanScope span_;
    MetricId id_;
    std::uint64_t startNs_;
};

} // namespace hqs::obs

#if HQS_OBS_ENABLED

#define OBS_SPAN(var, name) ::hqs::obs::SpanScope var{(name)}

#define OBS_PHASE(var, spanName, usCounterName)                                   \
    static const ::hqs::obs::MetricId var##_obs_id = ::hqs::obs::metric(          \
        (usCounterName), ::hqs::obs::MetricKind::Counter);                        \
    ::hqs::obs::PhaseScope var{(spanName), var##_obs_id}

#define OBS_COUNT(name, delta)                                                    \
    do {                                                                          \
        static const ::hqs::obs::MetricId obs_id_ =                               \
            ::hqs::obs::metric((name), ::hqs::obs::MetricKind::Counter);          \
        ::hqs::obs::currentRegistry().add(obs_id_, (delta));                      \
    } while (0)

#define OBS_GAUGE_MAX(name, value)                                                \
    do {                                                                          \
        static const ::hqs::obs::MetricId obs_id_ =                               \
            ::hqs::obs::metric((name), ::hqs::obs::MetricKind::Gauge);            \
        ::hqs::obs::currentRegistry().setMax(obs_id_,                             \
                                             static_cast<std::int64_t>(value));   \
    } while (0)

#define OBS_GAUGE_SET(name, value)                                                \
    do {                                                                          \
        static const ::hqs::obs::MetricId obs_id_ =                               \
            ::hqs::obs::metric((name), ::hqs::obs::MetricKind::Gauge);            \
        ::hqs::obs::currentRegistry().set(obs_id_,                                \
                                          static_cast<std::int64_t>(value));      \
    } while (0)

#define OBS_OBSERVE(name, value)                                                  \
    do {                                                                          \
        static const ::hqs::obs::MetricId obs_id_ =                               \
            ::hqs::obs::metric((name), ::hqs::obs::MetricKind::Histogram);        \
        ::hqs::obs::currentRegistry().observe(obs_id_,                            \
                                              static_cast<std::int64_t>(value));  \
    } while (0)

#else // HQS_OBS_ENABLED

// No-op expansions: arguments are referenced unevaluated (sizeof) so the
// disabled build neither runs them nor warns about unused variables.
#define OBS_SPAN(var, name) ::hqs::obs::NullSpan var{(name)}
#define OBS_PHASE(var, spanName, usCounterName) \
    ::hqs::obs::NullSpan var{(spanName), (usCounterName)}
#define OBS_COUNT(name, delta) \
    do { (void)sizeof(char[1]); (void)sizeof((delta)); } while (0)
#define OBS_GAUGE_MAX(name, value) \
    do { (void)sizeof(char[1]); (void)sizeof((value)); } while (0)
#define OBS_GAUGE_SET(name, value) \
    do { (void)sizeof(char[1]); (void)sizeof((value)); } while (0)
#define OBS_OBSERVE(name, value) \
    do { (void)sizeof(char[1]); (void)sizeof((value)); } while (0)

#endif // HQS_OBS_ENABLED
