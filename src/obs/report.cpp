#include "src/obs/report.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

namespace hqs::obs {

// --------------------------------------------------------------------------
// JsonWriter
// --------------------------------------------------------------------------

std::string JsonWriter::escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

void JsonWriter::newlineIndent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::beforeValue()
{
    if (pendingKey_) {
        pendingKey_ = false;
        return;
    }
    if (stack_.empty()) return;
    if (stack_.back().count > 0) os_ << ',';
    ++stack_.back().count;
    newlineIndent();
}

JsonWriter& JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back({false, 0});
    return *this;
}

JsonWriter& JsonWriter::endObject()
{
    const bool empty = stack_.back().count == 0;
    stack_.pop_back();
    if (!empty) newlineIndent();
    os_ << '}';
    if (stack_.empty()) os_ << '\n';
    return *this;
}

JsonWriter& JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back({true, 0});
    return *this;
}

JsonWriter& JsonWriter::endArray()
{
    const bool empty = stack_.back().count == 0;
    stack_.pop_back();
    if (!empty) newlineIndent();
    os_ << ']';
    return *this;
}

JsonWriter& JsonWriter::key(const std::string& k)
{
    if (stack_.back().count > 0) os_ << ',';
    ++stack_.back().count;
    newlineIndent();
    os_ << '"' << escape(k) << "\": ";
    pendingKey_ = true;
    return *this;
}

JsonWriter& JsonWriter::value(const std::string& v)
{
    beforeValue();
    os_ << '"' << escape(v) << '"';
    return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(double v)
{
    beforeValue();
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    os_ << buf;
    return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
    return *this;
}

JsonWriter& JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
    return *this;
}

// --------------------------------------------------------------------------
// Metric formatting
// --------------------------------------------------------------------------

void writeStatLines(std::ostream& os, const std::vector<MetricValue>& metrics)
{
    for (const MetricValue& m : metrics) {
        if (m.kind == MetricKind::Histogram) {
            os << "c stat " << m.name << ".count " << m.count << '\n';
            os << "c stat " << m.name << ".sum " << m.sum << '\n';
            os << "c stat " << m.name << ".max " << m.max << '\n';
        } else {
            os << "c stat " << m.name << ' ' << m.value << '\n';
        }
    }
}

void writeMetricsJson(JsonWriter& w, const std::vector<MetricValue>& metrics)
{
    w.beginObject();
    for (const MetricValue& m : metrics) {
        w.key(m.name);
        if (m.kind == MetricKind::Histogram) {
            w.beginObject();
            w.key("count").value(m.count);
            w.key("sum").value(m.sum);
            w.key("max").value(m.max);
            std::uint32_t last = kHistogramBuckets;
            while (last > 0 && m.buckets[last - 1] == 0) --last;
            w.key("buckets").beginArray();
            for (std::uint32_t b = 0; b < last; ++b) w.value(m.buckets[b]);
            w.endArray();
            w.endObject();
        } else {
            w.value(m.value);
        }
    }
    w.endObject();
}

void writeMetricsJson(std::ostream& os, const std::vector<MetricValue>& metrics)
{
    JsonWriter w(os);
    writeMetricsJson(w, metrics);
}

// --------------------------------------------------------------------------
// BENCH_table1.json
// --------------------------------------------------------------------------

namespace {

void writeSolverCells(JsonWriter& w, const BenchSolverCells& c)
{
    w.beginObject();
    w.key("solved").value(c.sat + c.unsat);
    w.key("sat").value(c.sat);
    w.key("unsat").value(c.unsat);
    w.key("timeout").value(c.timeout);
    w.key("memout").value(c.memout);
    w.key("common_time_ms").value(c.commonMs);
    w.endObject();
}

} // namespace

void writeBenchTable1Json(std::ostream& os, const BenchTable1Report& report)
{
    JsonWriter w(os);
    w.beginObject();
    // v3: the report grew the "portfolio" block (per-engine-family solved
    // and win columns) and the per-instance "portfolio_winner_family" cell.
    // v2 added the per-instance "instances" array — certification outcome,
    // extract/check time, and certificate size for every benched instance —
    // alongside the unchanged family rows and aggregates.
    w.key("schema").value("hqs-bench-table1/v3");
    w.key("params").beginObject();
    w.key("timeout_seconds").value(report.timeoutSeconds);
    w.key("hqs_node_limit").value(report.hqsNodeLimit);
    w.key("idq_ground_clause_limit").value(report.idqGroundClauseLimit);
    w.endObject();
    w.key("families").beginArray();
    for (const BenchFamilyRow& row : report.families) {
        w.beginObject();
        w.key("family").value(row.family);
        w.key("instances").value(row.instances);
        w.key("hqs");
        writeSolverCells(w, row.hqs);
        w.key("idq");
        writeSolverCells(w, row.idq);
        w.key("wrong_results").value(row.wrongResults);
        w.endObject();
    }
    w.endArray();
    w.key("instances").beginArray();
    for (const BenchInstanceRow& row : report.instances) {
        w.beginObject();
        w.key("name").value(row.name);
        w.key("family").value(row.family);
        w.key("hqs_result").value(row.hqsResult);
        w.key("certified").value(row.certified);
        w.key("cert_valid").value(row.certValid);
        w.key("cert_extract_ms").value(row.certExtractMs);
        w.key("cert_check_ms").value(row.certCheckMs);
        w.key("cert_size_nodes").value(row.certSizeNodes);
        w.key("portfolio_winner_family").value(row.portfolioWinnerFamily);
        w.endObject();
    }
    w.endArray();
    w.key("portfolio").beginObject();
    w.key("family_solved").beginObject();
    for (const auto& [family, n] : report.familySolved) w.key(family).value(n);
    w.endObject();
    w.key("family_wins").beginObject();
    for (const auto& [family, n] : report.familyWins) w.key(family).value(n);
    w.endObject();
    w.endObject();
    w.key("aggregates").beginObject();
    w.key("hqs_solved_total").value(report.hqsSolvedTotal);
    w.key("idq_solved_total").value(report.idqSolvedTotal);
    w.key("solved_under_one_second").value(report.solvedUnderOneSecond);
    w.key("hqs_only_solved").value(report.hqsOnlySolved);
    w.key("max_maxsat_ms").value(report.maxMaxSatMs);
    w.key("unit_pure_share_max").value(report.unitPureShareMax);
    w.key("wrong_results").value(report.wrongResults);
    w.endObject();
    w.key("metrics");
    writeMetricsJson(w, report.metrics);
    w.endObject();
}

// --------------------------------------------------------------------------
// BENCH_micro.json
// --------------------------------------------------------------------------

void writeBenchMicroJson(std::ostream& os, const BenchMicroReport& report)
{
    JsonWriter w(os);
    w.beginObject();
    // v2: the benchmark list grew the AIG-kernel rows (strash hit path,
    // Substitution-based compose, mark-compact GC) introduced with the
    // dense-strash manager.
    w.key("schema").value("hqs-bench-micro/v2");
    w.key("overhead_ns").beginObject();
    for (const auto& [name, ns] : report.overheadNs) w.key(name).value(ns);
    w.endObject();
    w.key("benchmarks").beginArray();
    for (const BenchMicroRow& row : report.benchmarks) {
        w.beginObject();
        w.key("name").value(row.name);
        w.key("iterations").value(row.iterations);
        w.key("real_ns").value(row.realNs);
        w.key("cpu_ns").value(row.cpuNs);
        if (row.itemsPerSecond > 0) w.key("items_per_second").value(row.itemsPerSecond);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

// --------------------------------------------------------------------------
// Prometheus text exposition
// --------------------------------------------------------------------------

std::string prometheusName(const std::string& name)
{
    std::string out = "hqs_";
    out.reserve(name.size() + 4);
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        out.push_back(ok ? c : '_');
    }
    return out;
}

void writePrometheusText(std::ostream& os, const std::vector<MetricValue>& metrics)
{
    for (const MetricValue& m : metrics) {
        const std::string name = prometheusName(m.name);
        switch (m.kind) {
            case MetricKind::Counter:
                os << "# TYPE " << name << " counter\n";
                os << name << ' ' << m.value << '\n';
                break;
            case MetricKind::Gauge:
                os << "# TYPE " << name << " gauge\n";
                os << name << ' ' << m.value << '\n';
                break;
            case MetricKind::Histogram: {
                os << "# TYPE " << name << " histogram\n";
                // Bucket i of the registry counts values in [2^(i-1), 2^i);
                // Prometheus buckets are cumulative with inclusive upper
                // bounds, so emit le="2^i" edges and fold the clamped top
                // bucket into +Inf.
                std::int64_t cumulative = 0;
                for (std::uint32_t i = 0; i + 1 < kHistogramBuckets; ++i) {
                    cumulative += m.buckets[i];
                    os << name << "_bucket{le=\"" << (std::int64_t{1} << i) << "\"} "
                       << cumulative << '\n';
                }
                os << name << "_bucket{le=\"+Inf\"} " << m.count << '\n';
                os << name << "_sum " << m.sum << '\n';
                os << name << "_count " << m.count << '\n';
                break;
            }
        }
    }
}

double histogramQuantile(const MetricValue& h, double q)
{
    if (h.kind != MetricKind::Histogram || h.count <= 0) return 0;
    if (q <= 0) return 0;
    if (q > 1) q = 1;
    const auto rank = static_cast<std::int64_t>(q * static_cast<double>(h.count) + 0.5);
    std::int64_t cumulative = 0;
    for (std::uint32_t i = 0; i < kHistogramBuckets; ++i) {
        cumulative += h.buckets[i];
        if (cumulative >= rank) {
            const double upper = i + 1 == kHistogramBuckets
                                     ? static_cast<double>(h.max)
                                     : static_cast<double>(std::int64_t{1} << i);
            return std::min(upper, static_cast<double>(h.max));
        }
    }
    return static_cast<double>(h.max);
}

BenchServiceLatency latencyFromHistogram(const MetricValue& h)
{
    BenchServiceLatency l;
    if (h.kind != MetricKind::Histogram || h.count == 0) return l;
    l.p50Us = histogramQuantile(h, 0.50);
    l.p90Us = histogramQuantile(h, 0.90);
    l.p99Us = histogramQuantile(h, 0.99);
    l.maxUs = static_cast<double>(h.max);
    l.meanUs = static_cast<double>(h.sum) / static_cast<double>(h.count);
    return l;
}

// --------------------------------------------------------------------------
// BENCH_service.json
// --------------------------------------------------------------------------

void writeBenchServiceJson(std::ostream& os, const std::vector<BenchServiceReport>& runs)
{
    JsonWriter w(os);
    w.beginObject();
    w.key("schema").value("hqs-bench-service/v4");
    w.key("runs").beginArray();
    for (const BenchServiceReport& report : runs) {
        w.beginObject();
        w.key("params").beginObject();
        w.key("workers").value(report.workers);
        w.key("connections").value(report.connections);
        w.key("requests").value(report.requests);
        w.key("max_inflight").value(report.maxInflight);
        w.key("max_queue").value(report.maxQueue);
        w.key("mode").value(report.jsonlMode ? "jsonl" : "http");
        w.key("cache").value(report.cacheEnabled);
        w.key("session").value(report.sessionMode);
        if (report.deltaFamily != 0) w.key("delta_family").value(report.deltaFamily);
        w.endObject();
        w.key("results").beginObject();
        w.key("ok").value(report.ok);
        w.key("rejected").value(report.rejected);
        w.key("errors").value(report.errors);
        w.key("retries").value(report.retries);
        w.key("cache_hits").value(report.cacheHits);
        if (report.deltaFamily != 0) {
            w.key("session_reuses").value(report.sessionReuses);
            w.key("cone_nodes_saved").value(report.coneNodesSaved);
        }
        w.key("wall_ms").value(report.wallMs);
        w.key("throughput_rps").value(report.throughputRps);
        w.key("latency_us").beginObject();
        w.key("p50").value(report.latency.p50Us);
        w.key("p90").value(report.latency.p90Us);
        w.key("p99").value(report.latency.p99Us);
        w.key("max").value(report.latency.maxUs);
        w.key("mean").value(report.latency.meanUs);
        w.endObject();
        w.endObject();
        w.key("metrics");
        writeMetricsJson(w, report.metrics);
        w.endObject();
    }
    w.endArray();
    w.endObject();
}

} // namespace hqs::obs
