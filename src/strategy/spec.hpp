// Declarative strategy specs: the deployment-facing description of how a
// solve runs.
//
// PR 1-7 hard-coded the portfolio lineup, the memout degradation ladder,
// and every admission default; changing any of them meant a recompile.
// A StrategySpec carries all of that as data, loaded from a JSON file
// (`--strategy=spec.json`) and validated up front with field-tagged errors
// (the api::SolveRequest::validate() discipline):
//
//   {
//     "name": "default",
//     "engines": [
//       {"name": "hqs-maxsat", "engine": "hqs", "selection": "maxsat"},
//       {"name": "hqs-bdd",    "engine": "hqs-bdd"},
//       {"name": "expand",     "engine": "expand", "max_universals": 22}
//     ],
//     "ladder": [
//       {"name": "full"},
//       {"name": "no-fraig", "fraig": false, "backoff_seconds": 0.01}
//     ],
//     "cache":    {"mode": "on", "ttl_seconds": 0, "max_bytes": 67108864},
//     "defaults": {"timeout_seconds": 0, "rss_limit_mb": 0, "node_limit": 0}
//   }
//
// Every section is optional; omitted sections inherit the defaults below,
// and defaultStrategySpec() reproduces the historical hard-coded behavior
// exactly (PortfolioSolver::defaultEngines is built from it).  The spec is
// pure data: translating engine rungs into runnable racers happens in
// hqs_runtime (PortfolioSolver::enginesFromSpec), so this library never
// links solver code and front ends can validate specs cheaply.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/runtime/guard.hpp"

namespace hqs::strategy {

/// One named engine rung of the portfolio lineup, in priority order.
struct EngineRung {
    std::string name;      ///< metric/JSONL label; defaults to `engine`
    std::string engine;    ///< "hqs" | "hqs-bdd" | "idq" | "expand"
    std::string selection = "maxsat"; ///< hqs variable selection: maxsat|greedy
    bool fraig = true;                ///< FRAIG sweeping (hqs engines)
    double nodeLimitScale = 1.0;      ///< multiplies the request node budget
    std::size_t maxUniversals = 22;   ///< expand only: sit out above this
};

/// When and how solves consult the result cache.
struct CachePolicy {
    enum class Mode {
        On,     ///< read and write
        Off,    ///< neither read nor write
        Bypass, ///< write-only: skip the read, refresh the entry
    };
    Mode mode = Mode::On;
    double ttlSeconds = 0;            ///< entry lifetime; 0 = no expiry
    std::size_t maxBytes = 64ull << 20; ///< in-memory shard budget
};

const char* toString(CachePolicy::Mode m);
bool cacheModeFromString(const std::string& text, CachePolicy::Mode* out);

/// Admission defaults applied when neither the request nor the front end
/// flag sets a budget.
struct AdmissionDefaults {
    double timeoutSeconds = 0;
    std::size_t rssLimitBytes = 0;
    std::size_t nodeLimit = 0;
};

struct StrategySpec {
    std::string name = "default";
    std::vector<EngineRung> engines;     ///< portfolio lineup, priority order
    std::vector<DegradationRung> ladder; ///< memout degradation ladder
    CachePolicy cache;
    AdmissionDefaults defaults;
};

/// The shipped spec: the exact engine lineup of
/// PortfolioSolver::defaultEngines and the defaultDegradationLadder().
StrategySpec defaultStrategySpec();

/// One structured validation failure: which spec field, and why.  The
/// field uses JSON-path-ish addressing ("engines[2].engine").
struct SpecError {
    std::string field;
    std::string message;
};

/// Render errors as "field: message; field: message" for logs/CLI.
std::string toString(const std::vector<SpecError>& errors);

/// Parse and validate a JSON spec.  Returns true and fills @p out when the
/// text is well-formed and every field validates; otherwise returns false
/// with at least one field-tagged error.  Sections absent from the JSON
/// keep their defaultStrategySpec() values.
bool parseStrategySpec(const std::string& text, StrategySpec* out,
                       std::vector<SpecError>* errors);

/// parseStrategySpec over a file's contents; unreadable file -> one error
/// tagged "(file)".
bool loadStrategySpecFile(const std::string& path, StrategySpec* out,
                          std::vector<SpecError>* errors);

} // namespace hqs::strategy
