#include "src/strategy/spec.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "src/runtime/api.hpp"

namespace hqs::strategy {

namespace {

// --------------------------------------------------------- tiny JSON reader
//
// The repo's other JSON surfaces are line-oriented (JSONL rows, the bench
// report writer); strategy specs are the first multi-line nested JSON we
// consume, so this file carries a ~150-line recursive-descent reader for
// the JSON subset a spec needs: objects, arrays, strings with the common
// escapes, numbers, booleans, null.  Parse failures surface as a SpecError
// tagged "(json)" with a byte offset, the same shape as field validation.

struct JsonValue {
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0;
    std::string string;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue* find(const std::string& key) const
    {
        for (const auto& [k, v] : object)
            if (k == key) return &v;
        return nullptr;
    }
};

struct JsonReader {
    const std::string& text;
    std::size_t pos = 0;
    std::string error;

    bool fail(const std::string& what)
    {
        if (error.empty())
            error = what + " at byte " + std::to_string(pos);
        return false;
    }

    void skipWs()
    {
        while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                     text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool literal(const char* word)
    {
        const std::size_t n = std::string(word).size();
        if (text.compare(pos, n, word) != 0) return fail("invalid token");
        pos += n;
        return true;
    }

    bool parseString(std::string* out)
    {
        if (pos >= text.size() || text[pos] != '"') return fail("expected string");
        ++pos;
        out->clear();
        while (pos < text.size()) {
            const char c = text[pos++];
            if (c == '"') return true;
            if (c != '\\') {
                out->push_back(c);
                continue;
            }
            if (pos >= text.size()) break;
            const char esc = text[pos++];
            switch (esc) {
            case '"': out->push_back('"'); break;
            case '\\': out->push_back('\\'); break;
            case '/': out->push_back('/'); break;
            case 'b': out->push_back('\b'); break;
            case 'f': out->push_back('\f'); break;
            case 'n': out->push_back('\n'); break;
            case 'r': out->push_back('\r'); break;
            case 't': out->push_back('\t'); break;
            case 'u': {
                if (pos + 4 > text.size()) return fail("truncated \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                if (cp < 0x80) {
                    out->push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out->push_back(static_cast<char>(0xc0 | (cp >> 6)));
                    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                } else {
                    out->push_back(static_cast<char>(0xe0 | (cp >> 12)));
                    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
                    out->push_back(static_cast<char>(0x80 | (cp & 0x3f)));
                }
                break;
            }
            default: return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool parseValue(JsonValue* out)
    {
        skipWs();
        if (pos >= text.size()) return fail("unexpected end of input");
        const char c = text[pos];
        if (c == '{') {
            ++pos;
            out->type = JsonValue::Type::Object;
            skipWs();
            if (pos < text.size() && text[pos] == '}') {
                ++pos;
                return true;
            }
            while (true) {
                skipWs();
                std::string key;
                if (!parseString(&key)) return false;
                skipWs();
                if (pos >= text.size() || text[pos] != ':')
                    return fail("expected ':'");
                ++pos;
                JsonValue value;
                if (!parseValue(&value)) return false;
                out->object.emplace_back(std::move(key), std::move(value));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == '}') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos;
            out->type = JsonValue::Type::Array;
            skipWs();
            if (pos < text.size() && text[pos] == ']') {
                ++pos;
                return true;
            }
            while (true) {
                JsonValue item;
                if (!parseValue(&item)) return false;
                out->array.push_back(std::move(item));
                skipWs();
                if (pos < text.size() && text[pos] == ',') {
                    ++pos;
                    continue;
                }
                if (pos < text.size() && text[pos] == ']') {
                    ++pos;
                    return true;
                }
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            out->type = JsonValue::Type::String;
            return parseString(&out->string);
        }
        if (c == 't') {
            out->type = JsonValue::Type::Bool;
            out->boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out->type = JsonValue::Type::Bool;
            out->boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out->type = JsonValue::Type::Null;
            return literal("null");
        }
        if (c == '-' || (c >= '0' && c <= '9')) {
            const std::size_t start = pos;
            if (text[pos] == '-') ++pos;
            while (pos < text.size() &&
                   ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
                    text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
                    text[pos] == '-'))
                ++pos;
            try {
                std::size_t used = 0;
                const std::string token = text.substr(start, pos - start);
                out->number = std::stod(token, &used);
                if (used != token.size()) return fail("malformed number");
            } catch (const std::exception&) {
                return fail("malformed number");
            }
            out->type = JsonValue::Type::Number;
            return true;
        }
        return fail("unexpected character");
    }

    bool parseDocument(JsonValue* out)
    {
        if (!parseValue(out)) return false;
        skipWs();
        if (pos != text.size()) return fail("trailing content");
        return true;
    }
};

// ----------------------------------------------------------- field helpers

struct Validator {
    std::vector<SpecError>* errors;

    void addError(const std::string& field, const std::string& message)
    {
        errors->push_back({field, message});
    }

    bool getString(const JsonValue& obj, const std::string& path,
                   const std::string& key, std::string* out, bool required)
    {
        const JsonValue* v = obj.find(key);
        if (!v) {
            if (required) addError(path + "." + key, "required field is missing");
            return false;
        }
        if (v->type != JsonValue::Type::String) {
            addError(path + "." + key, "must be a string");
            return false;
        }
        *out = v->string;
        return true;
    }

    bool getBool(const JsonValue& obj, const std::string& path,
                 const std::string& key, bool* out)
    {
        const JsonValue* v = obj.find(key);
        if (!v) return false;
        if (v->type != JsonValue::Type::Bool) {
            addError(path + "." + key, "must be a boolean");
            return false;
        }
        *out = v->boolean;
        return true;
    }

    bool getNumber(const JsonValue& obj, const std::string& path,
                   const std::string& key, double* out, double min)
    {
        const JsonValue* v = obj.find(key);
        if (!v) return false;
        if (v->type != JsonValue::Type::Number || !std::isfinite(v->number)) {
            addError(path + "." + key, "must be a finite number");
            return false;
        }
        if (v->number < min) {
            addError(path + "." + key,
                     "must be >= " + std::to_string(min).substr(0, 3));
            return false;
        }
        *out = v->number;
        return true;
    }

    bool getSize(const JsonValue& obj, const std::string& path,
                 const std::string& key, std::size_t* out)
    {
        const JsonValue* v = obj.find(key);
        if (!v) return false;
        if (v->type != JsonValue::Type::Number || !std::isfinite(v->number) ||
            v->number < 0 || v->number != std::floor(v->number)) {
            addError(path + "." + key, "must be a non-negative integer");
            return false;
        }
        *out = static_cast<std::size_t>(v->number);
        return true;
    }

    void rejectUnknownKeys(const JsonValue& obj, const std::string& path,
                           std::initializer_list<const char*> known)
    {
        for (const auto& [key, value] : obj.object) {
            bool found = false;
            for (const char* k : known) found = found || key == k;
            if (!found) addError(path + "." + key, "unknown field");
        }
    }
};

} // namespace

const char* toString(CachePolicy::Mode m)
{
    switch (m) {
    case CachePolicy::Mode::On: return "on";
    case CachePolicy::Mode::Off: return "off";
    case CachePolicy::Mode::Bypass: return "bypass";
    }
    return "?";
}

bool cacheModeFromString(const std::string& text, CachePolicy::Mode* out)
{
    if (text == "on") {
        *out = CachePolicy::Mode::On;
    } else if (text == "off") {
        *out = CachePolicy::Mode::Off;
    } else if (text == "bypass") {
        *out = CachePolicy::Mode::Bypass;
    } else {
        return false;
    }
    return true;
}

StrategySpec defaultStrategySpec()
{
    StrategySpec spec;
    spec.name = "default";
    spec.engines = {
        {"hqs-maxsat", "hqs", "maxsat", /*fraig=*/true, 1.0, 22},
        {"hqs-greedy", "hqs", "greedy", /*fraig=*/true, 1.0, 22},
        {"hqs-bdd", "hqs-bdd", "maxsat", /*fraig=*/true, 1.0, 22},
        {"idq", "idq", "maxsat", /*fraig=*/true, 1.0, 22},
        {"expand", "expand", "maxsat", /*fraig=*/true, 1.0, 22},
        {"cegar", "cegar", "maxsat", /*fraig=*/true, 1.0, 22},
    };
    spec.ladder = defaultDegradationLadder();
    return spec;
}

std::string toString(const std::vector<SpecError>& errors)
{
    std::string out;
    for (const SpecError& e : errors) {
        if (!out.empty()) out += "; ";
        out += e.field + ": " + e.message;
    }
    return out;
}

bool parseStrategySpec(const std::string& text, StrategySpec* out,
                       std::vector<SpecError>* errors)
{
    std::vector<SpecError> localErrors;
    if (!errors) errors = &localErrors;
    errors->clear();
    StrategySpec spec = defaultStrategySpec();

    JsonValue root;
    JsonReader reader{text, 0, {}};
    if (!reader.parseDocument(&root)) {
        errors->push_back({"(json)", reader.error});
        return false;
    }
    if (root.type != JsonValue::Type::Object) {
        errors->push_back({"(json)", "spec must be a JSON object"});
        return false;
    }

    Validator v{errors};
    v.rejectUnknownKeys(root, "spec",
                        {"name", "engines", "ladder", "cache", "defaults"});

    std::string name;
    if (v.getString(root, "spec", "name", &name, /*required=*/false)) {
        if (name.empty())
            v.addError("spec.name", "must not be empty");
        else
            spec.name = name;
    }

    if (const JsonValue* engines = root.find("engines")) {
        if (engines->type != JsonValue::Type::Array) {
            v.addError("engines", "must be an array");
        } else if (engines->array.empty()) {
            v.addError("engines", "must name at least one engine rung");
        } else {
            spec.engines.clear();
            for (std::size_t i = 0; i < engines->array.size(); ++i) {
                const JsonValue& rung = engines->array[i];
                const std::string path = "engines[" + std::to_string(i) + "]";
                if (rung.type != JsonValue::Type::Object) {
                    v.addError(path, "must be an object");
                    continue;
                }
                v.rejectUnknownKeys(rung, path,
                                    {"name", "engine", "selection", "fraig",
                                     "node_limit_scale", "max_universals"});
                EngineRung er;
                if (v.getString(rung, path, "engine", &er.engine,
                                /*required=*/true)) {
                    const std::optional<api::EngineSpec> parsed =
                        api::parseEngineSpec(er.engine);
                    if (er.engine.empty() || !parsed ||
                        parsed->kind == api::EngineSpec::Kind::Portfolio) {
                        v.addError(path + ".engine",
                                   "must be one of hqs, hqs-bdd, idq, expand, "
                                   "cegar");
                    }
                }
                er.name = er.engine;
                std::string rungName;
                if (v.getString(rung, path, "name", &rungName,
                                /*required=*/false)) {
                    if (rungName.empty())
                        v.addError(path + ".name", "must not be empty");
                    else
                        er.name = rungName;
                }
                std::string selection;
                if (v.getString(rung, path, "selection", &selection,
                                /*required=*/false)) {
                    if (selection != "maxsat" && selection != "greedy")
                        v.addError(path + ".selection",
                                   "must be maxsat or greedy");
                    else
                        er.selection = selection;
                }
                v.getBool(rung, path, "fraig", &er.fraig);
                double scale = er.nodeLimitScale;
                if (v.getNumber(rung, path, "node_limit_scale", &scale, 0) &&
                    scale <= 0)
                    v.addError(path + ".node_limit_scale", "must be > 0");
                else
                    er.nodeLimitScale = scale;
                v.getSize(rung, path, "max_universals", &er.maxUniversals);
                spec.engines.push_back(std::move(er));
            }
            for (std::size_t i = 0; i < spec.engines.size(); ++i)
                for (std::size_t j = i + 1; j < spec.engines.size(); ++j)
                    if (spec.engines[i].name == spec.engines[j].name)
                        v.addError("engines[" + std::to_string(j) + "].name",
                                   "duplicate rung name '" +
                                       spec.engines[j].name + "'");
        }
    }

    if (const JsonValue* ladder = root.find("ladder")) {
        if (ladder->type != JsonValue::Type::Array) {
            v.addError("ladder", "must be an array");
        } else if (ladder->array.empty()) {
            v.addError("ladder", "must name at least one rung");
        } else {
            spec.ladder.clear();
            for (std::size_t i = 0; i < ladder->array.size(); ++i) {
                const JsonValue& rung = ladder->array[i];
                const std::string path = "ladder[" + std::to_string(i) + "]";
                if (rung.type != JsonValue::Type::Object) {
                    v.addError(path, "must be an object");
                    continue;
                }
                v.rejectUnknownKeys(rung, path,
                                    {"name", "fraig", "node_limit_scale",
                                     "bdd_backend", "backoff_seconds"});
                DegradationRung dr;
                if (v.getString(rung, path, "name", &dr.name,
                                /*required=*/true) &&
                    dr.name.empty())
                    v.addError(path + ".name", "must not be empty");
                v.getBool(rung, path, "fraig", &dr.fraig);
                double scale = dr.nodeLimitScale;
                if (v.getNumber(rung, path, "node_limit_scale", &scale, 0) &&
                    scale <= 0)
                    v.addError(path + ".node_limit_scale", "must be > 0");
                else
                    dr.nodeLimitScale = scale;
                v.getBool(rung, path, "bdd_backend", &dr.bddBackend);
                v.getNumber(rung, path, "backoff_seconds", &dr.backoffSeconds, 0);
                spec.ladder.push_back(std::move(dr));
            }
            for (std::size_t i = 0; i < spec.ladder.size(); ++i)
                for (std::size_t j = i + 1; j < spec.ladder.size(); ++j)
                    if (spec.ladder[i].name == spec.ladder[j].name)
                        v.addError("ladder[" + std::to_string(j) + "].name",
                                   "duplicate rung name '" +
                                       spec.ladder[j].name + "'");
        }
    }

    if (const JsonValue* cachePolicy = root.find("cache")) {
        if (cachePolicy->type != JsonValue::Type::Object) {
            v.addError("cache", "must be an object");
        } else {
            v.rejectUnknownKeys(*cachePolicy, "cache",
                                {"mode", "ttl_seconds", "max_bytes"});
            std::string mode;
            if (v.getString(*cachePolicy, "cache", "mode", &mode,
                            /*required=*/false) &&
                !cacheModeFromString(mode, &spec.cache.mode))
                v.addError("cache.mode", "must be on, off, or bypass");
            v.getNumber(*cachePolicy, "cache", "ttl_seconds",
                        &spec.cache.ttlSeconds, 0);
            v.getSize(*cachePolicy, "cache", "max_bytes", &spec.cache.maxBytes);
        }
    }

    if (const JsonValue* defaults = root.find("defaults")) {
        if (defaults->type != JsonValue::Type::Object) {
            v.addError("defaults", "must be an object");
        } else {
            v.rejectUnknownKeys(*defaults, "defaults",
                                {"timeout_seconds", "rss_limit_mb", "node_limit"});
            v.getNumber(*defaults, "defaults", "timeout_seconds",
                        &spec.defaults.timeoutSeconds, 0);
            std::size_t rssMb = 0;
            if (v.getSize(*defaults, "defaults", "rss_limit_mb", &rssMb))
                spec.defaults.rssLimitBytes = rssMb << 20;
            v.getSize(*defaults, "defaults", "node_limit",
                      &spec.defaults.nodeLimit);
        }
    }

    if (!errors->empty()) return false;
    if (out) *out = std::move(spec);
    return true;
}

bool loadStrategySpecFile(const std::string& path, StrategySpec* out,
                          std::vector<SpecError>* errors)
{
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
        if (errors) errors->assign(1, {"(file)", "cannot open " + path});
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
        if (errors) errors->assign(1, {"(file)", "cannot read " + path});
        return false;
    }
    return parseStrategySpec(buf.str(), out, errors);
}

} // namespace hqs::strategy
