// Content-addressed result cache: verdicts, solve metadata, and Skolem
// certificates keyed by the canonical formula hash.
//
// The cache has two layers.  The in-process shard is an LRU map under a
// byte budget with optional TTL — one mutex, entries counted by their
// certificate/metadata footprint, least-recently-used entries evicted when
// a store pushes the shard over budget.  The optional persistent store
// (`CacheConfig::dir`) keeps one file per canonical hash, written to a
// temporary name and atomically renamed into place, so concurrent writers
// (the forked worker fleet sharing one --cache-dir) can only ever race
// whole files, never interleave bytes.  Loads re-verify the stored key and
// a whole-payload checksum; anything truncated, corrupt, or mismatched is
// reported with a typed status and treated as a miss — a damaged cache can
// cost a re-solve, never a wrong answer.
//
// Certificates ride along with the verdict, but a cached certificate is
// only ever re-served after vetCachedCertificate() re-checks the hash
// binding: the requesting formula's cert::formulaHash must equal both the
// hash recorded at store time and the hash embedded in the artifact itself.
// A mismatch is a typed rejection (`cache.cert_rejects`); the verdict may
// still be served (canonically equal formulas share a verdict but not
// necessarily a variable numbering).
//
// Fault checkpoints: `cache-load` fires at persistent-store reads and
// `cache-store` at writes (HQS_FAULT=cache-load:1 etc.), so the recovery
// tests can prove a cache-layer failure surfaces as a structured failure
// instead of taking the worker down.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/base/result.hpp"
#include "src/cache/canonical.hpp"

namespace hqs::cache {

/// One cached answer.
struct CacheEntry {
    SolveResult result = SolveResult::Unknown;
    std::string engine;            ///< engine (or portfolio winner) that decided
    double solveMilliseconds = 0;  ///< wall time of the original solve
    std::uint64_t certFormulaHash = 0; ///< cert::formulaHash of the source formula
    std::string certificate;       ///< serialized artifact; "" = none
    std::int64_t storedUnixMs = 0; ///< stamped by store(); drives the TTL
};

/// Outcome of consulting the persistent store for one key.
enum class LoadStatus {
    Hit,
    Miss,             ///< no file for this key
    Expired,          ///< entry older than the TTL
    Truncated,        ///< file ends before the payload is complete
    BadFormat,        ///< malformed header or field
    KeyMismatch,      ///< stored key differs from the requested one
    ChecksumMismatch, ///< payload checksum failed
    IoError,          ///< open/read failed
};

const char* toString(LoadStatus s);

/// Why a cached certificate was or was not re-served.
enum class CertReuse {
    Served,            ///< hash binding verified; certificate is usable
    None,              ///< entry carries no certificate
    HashMismatch,      ///< request formula hash != stored/embedded hash
    MalformedArtifact, ///< cached artifact lost its header or hash line
};

const char* toString(CertReuse r);

struct CacheConfig {
    /// In-memory shard budget; evict LRU entries beyond it (0 = unlimited).
    std::size_t maxBytes = 64ull << 20;
    /// Entry lifetime in seconds (0 = no expiry).  Applies to both layers.
    double ttlSeconds = 0;
    /// Persistent store directory; "" = in-memory only.  Created on demand.
    std::string dir;
    /// Unix-epoch milliseconds; tests inject a fake clock to age entries.
    std::function<std::int64_t()> clock;
};

/// Per-instance counters (the obs registry carries the same signals as
/// cache.* metrics; these feed /stats and tests without a registry).
struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t expired = 0;
    std::uint64_t stores = 0;
    std::uint64_t persistHits = 0;   ///< hits satisfied from the directory
    std::uint64_t persistErrors = 0; ///< corrupt/truncated/unreadable files
    std::uint64_t bytes = 0;         ///< current in-memory footprint
};

class ResultCache {
public:
    explicit ResultCache(CacheConfig config = {});

    /// Look @p key up in the shard, then in the persistent store.  Counts a
    /// hit or a miss; expired and corrupt entries are misses (and expired
    /// in-memory entries are dropped on the spot).
    std::optional<CacheEntry> lookup(const CanonicalKey& key);

    /// Insert/overwrite @p entry (storedUnixMs is stamped here), evict LRU
    /// entries beyond the byte budget, and mirror to the persistent store
    /// when configured.  Callers cache conclusive verdicts only; the cache
    /// itself does not judge.
    void store(const CanonicalKey& key, CacheEntry entry);

    /// Persistent-store read for one key, bypassing the in-memory shard.
    /// Exposed so tests can probe exactly how a damaged file is classified.
    LoadStatus loadPersistent(const CanonicalKey& key, CacheEntry* out);

    CacheStats stats() const;
    std::size_t entryCount() const;
    const CacheConfig& config() const { return config_; }

private:
    using LruList = std::list<std::pair<CanonicalKey, CacheEntry>>;

    static std::size_t entryBytes(const CacheEntry& e);
    bool expired(const CacheEntry& e, std::int64_t nowMs) const;
    void evictOverBudgetLocked();
    void insertLocked(const CanonicalKey& key, CacheEntry entry);
    void storePersistent(const CanonicalKey& key, const CacheEntry& entry);
    std::string pathFor(const CanonicalKey& key) const;
    std::int64_t nowMs() const;

    CacheConfig config_;
    mutable std::mutex mu_;
    LruList lru_; ///< front = most recently used
    std::unordered_map<CanonicalKey, LruList::iterator> index_;
    std::size_t bytes_ = 0;
    CacheStats stats_;
};

/// Serialize @p entry in the persistent-store format (exposed for tests).
std::string serializeEntry(const CanonicalKey& key, const CacheEntry& entry);

/// Inverse of serializeEntry with full verification against @p key.
LoadStatus parseEntry(const std::string& text, const CanonicalKey& key,
                      CacheEntry* out);

/// Re-verify the hash binding of a cached certificate against the
/// requesting formula's cert::formulaHash.  Served only when @p requestHash
/// equals both the hash recorded at store time and the `hash` line embedded
/// in the artifact.  Counts cache.cert_hits / cache.cert_rejects.
CertReuse vetCachedCertificate(const CacheEntry& entry, std::uint64_t requestHash);

} // namespace hqs::cache
