#include "src/cache/canonical.hpp"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/cert/certificate.hpp"

namespace hqs::cache {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvOffsetAlt = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& text, std::uint64_t h)
{
    for (unsigned char c : text) {
        h ^= c;
        h *= kFnvPrime;
    }
    return h;
}

/// Order-independent and order-dependent 64-bit mixers for the refinement
/// colors.  mix() is a sequential combiner (splitmix-style finalizer keeps
/// adjacent integer inputs from producing adjacent colors); unordered() is
/// commutative, for multisets whose element order must not matter.
std::uint64_t mix(std::uint64_t h, std::uint64_t v)
{
    v += 0x9e3779b97f4a7c15ull;
    v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ull;
    v = (v ^ (v >> 27)) * 0x94d049bb133111ebull;
    v ^= v >> 31;
    return (h ^ v) * kFnvPrime;
}

std::uint64_t unordered(std::uint64_t a, std::uint64_t b)
{
    // Sum of strongly mixed elements: addition is commutative and
    // associative, so the fold result depends only on the multiset, never
    // on the order the elements arrive in.
    return a + mix(0, b);
}

} // namespace

std::string toHex(const CanonicalKey& key)
{
    char buf[33];
    std::snprintf(buf, sizeof buf, "%016llx%016llx",
                  static_cast<unsigned long long>(key.hi),
                  static_cast<unsigned long long>(key.lo));
    return std::string(buf, 32);
}

bool keyFromHex(const std::string& text, CanonicalKey* out)
{
    if (text.size() != 32) return false;
    std::uint64_t words[2] = {0, 0};
    for (std::size_t i = 0; i < 32; ++i) {
        const char c = text[i];
        std::uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
        words[i / 16] = (words[i / 16] << 4) | digit;
    }
    if (out) *out = {words[0], words[1]};
    return true;
}

CanonicalForm canonicalize(const ParsedQdimacs& parsed)
{
    // Resolve the prefix to solver semantics: explicit dependency sets for
    // every existential, universals in declaration order, unquantified
    // matrix variables as zero-dependency existentials.
    const cert::NormalizedPrefix prefix = cert::normalizePrefix(parsed);

    Var maxVar = parsed.matrix.numVars();
    for (Var v : prefix.universals) maxVar = std::max<Var>(maxVar, v + 1);
    for (Var v : prefix.existentials) maxVar = std::max<Var>(maxVar, v + 1);
    const std::size_t n = maxVar;

    // Per-variable structure that is invariant under renaming: quantifier
    // kind, dependency-set size, and the signed occurrence counts.
    std::vector<std::uint8_t> isUniversal(n, 0), isQuantified(n, 0);
    std::vector<const std::vector<Var>*> deps(n, nullptr);
    for (Var v : prefix.universals) {
        isUniversal[v] = 1;
        isQuantified[v] = 1;
    }
    for (std::size_t i = 0; i < prefix.existentials.size(); ++i) {
        const Var v = prefix.existentials[i];
        isQuantified[v] = 1;
        deps[v] = &prefix.deps[i];
    }

    // Normalize the clause list before anything looks at it: literals
    // sorted and deduplicated within each clause, exact duplicate clauses
    // dropped.  Doing this up front keeps the occurrence profile (and with
    // it the refinement colors) independent of duplicates that the rendered
    // form would discard anyway.
    std::vector<std::vector<Lit>> clauses;
    clauses.reserve(parsed.matrix.clauses().size());
    for (const Clause& c : parsed.matrix.clauses()) {
        std::vector<Lit> lits(c.begin(), c.end());
        std::sort(lits.begin(), lits.end());
        lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
        clauses.push_back(std::move(lits));
    }
    std::sort(clauses.begin(), clauses.end());
    clauses.erase(std::unique(clauses.begin(), clauses.end()), clauses.end());

    std::vector<std::uint32_t> posOcc(n, 0), negOcc(n, 0);
    std::vector<std::vector<std::size_t>> occurrences(n);
    for (std::size_t ci = 0; ci < clauses.size(); ++ci) {
        for (Lit l : clauses[ci]) {
            (l.negative() ? negOcc : posOcc)[l.var()]++;
            occurrences[l.var()].push_back(ci);
        }
    }

    // Color refinement.  Initial colors see only local structure; each
    // round folds in the colors of the clauses a variable occurs in (as an
    // unordered multiset keyed by sign) and of its dependency set, so after
    // a few rounds the color captures the variable's neighborhood.  Three
    // rounds separate everything the cache cares about in practice; deeper
    // symmetric ties degrade to first-occurrence tie-breaks (false miss at
    // worst, see canonical.hpp).
    std::vector<std::uint64_t> color(n), next(n), clauseColor(clauses.size());
    for (std::size_t v = 0; v < n; ++v) {
        std::uint64_t h = mix(0, isQuantified[v] ? (isUniversal[v] ? 2 : 1) : 0);
        h = mix(h, deps[v] ? deps[v]->size() + 1 : 0);
        h = mix(h, posOcc[v]);
        h = mix(h, negOcc[v]);
        color[v] = h;
    }
    for (int round = 0; round < 3; ++round) {
        for (std::size_t ci = 0; ci < clauses.size(); ++ci) {
            std::uint64_t h = mix(0, clauses[ci].size());
            std::uint64_t bag = 0;
            for (Lit l : clauses[ci])
                bag = unordered(bag, mix(color[l.var()], l.negative() ? 1 : 2));
            clauseColor[ci] = mix(h, bag);
        }
        for (std::size_t v = 0; v < n; ++v) {
            std::uint64_t bag = 0;
            for (std::size_t ci : occurrences[v]) bag = unordered(bag, clauseColor[ci]);
            std::uint64_t h = mix(color[v], bag);
            if (deps[v]) {
                std::uint64_t depBag = 0;
                for (Var d : *deps[v]) depBag = unordered(depBag, color[d]);
                h = mix(h, depBag);
            }
            next[v] = h;
        }
        color.swap(next);
    }

    // Dense renaming: order variables by color, then first occurrence in
    // the matrix (occurrence order is itself presentation-dependent, but
    // only reached for color ties).
    std::vector<std::uint32_t> firstOcc(n, static_cast<std::uint32_t>(-1));
    std::uint32_t tick = 0;
    for (const std::vector<Lit>& c : clauses)
        for (Lit l : c)
            if (firstOcc[l.var()] == static_cast<std::uint32_t>(-1))
                firstOcc[l.var()] = tick++;
    std::vector<Var> order;
    order.reserve(n);
    for (Var v = 0; v < n; ++v) order.push_back(v);
    std::sort(order.begin(), order.end(), [&](Var a, Var b) {
        if (color[a] != color[b]) return color[a] < color[b];
        if (firstOcc[a] != firstOcc[b]) return firstOcc[a] < firstOcc[b];
        return a < b;
    });
    std::vector<Var> rename(n, kNoVar);
    for (std::size_t rank = 0; rank < order.size(); ++rank)
        rename[order[rank]] = static_cast<Var>(rank);

    // Render: sorted prefix lines, then sorted deduplicated clauses, all
    // under the dense renaming and 1-based like DQDIMACS.
    std::vector<int> universals;
    for (Var v : prefix.universals)
        universals.push_back(static_cast<int>(rename[v]) + 1);
    std::sort(universals.begin(), universals.end());

    std::vector<std::vector<int>> depLines;
    for (std::size_t i = 0; i < prefix.existentials.size(); ++i) {
        std::vector<int> line;
        line.push_back(static_cast<int>(rename[prefix.existentials[i]]) + 1);
        for (Var d : prefix.deps[i]) line.push_back(static_cast<int>(rename[d]) + 1);
        std::sort(line.begin() + 1, line.end());
        depLines.push_back(std::move(line));
    }
    std::sort(depLines.begin(), depLines.end());

    std::vector<std::vector<int>> rows;
    rows.reserve(clauses.size());
    for (const std::vector<Lit>& c : clauses) {
        std::vector<int> row;
        row.reserve(c.size());
        for (Lit l : c) {
            const int v = static_cast<int>(rename[l.var()]) + 1;
            row.push_back(l.negative() ? -v : v);
        }
        std::sort(row.begin(), row.end(), [](int a, int b) {
            const int va = a < 0 ? -a : a, vb = b < 0 ? -b : b;
            return va != vb ? va < vb : a > b;
        });
        rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());

    CanonicalForm form;
    form.numVars = n;
    form.numClauses = rows.size();
    std::string& text = form.text;
    text = "dqbf-canon 1\np cnf " + std::to_string(n) + " " +
           std::to_string(rows.size()) + "\n";
    const auto appendInts = [&text](const char* tag, const std::vector<int>& xs) {
        text += tag;
        for (int x : xs) {
            text += ' ';
            text += std::to_string(x);
        }
        text += " 0\n";
    };
    if (!universals.empty()) appendInts("a", universals);
    for (const std::vector<int>& line : depLines) appendInts("d", line);
    for (const std::vector<int>& row : rows) {
        bool first = true;
        for (int x : row) {
            if (!first) text += ' ';
            first = false;
            text += std::to_string(x);
        }
        text += " 0\n";
    }

    form.key.hi = fnv1a(text, kFnvOffset);
    form.key.lo = fnv1a(text, kFnvOffsetAlt);
    return form;
}

CanonicalKey canonicalKey(const ParsedQdimacs& parsed)
{
    return canonicalize(parsed).key;
}

} // namespace hqs::cache
