// Canonical form and content hash for parsed DQDIMACS formulas.
//
// The result cache must recognize a formula it has solved before even when
// the bytes differ: PEC workloads re-submit the same instance with clauses
// reordered, literals shuffled inside clauses, variables renumbered, or
// dependency sets listed in a different order.  canonicalize() maps all of
// those presentations to one normal form:
//
//   * prefix semantics are resolved first (cert::normalizePrefix): `e`-block
//     variables get their implicit dependency set, `d` lines keep their
//     explicit one, unquantified matrix variables become existentials with
//     empty dependencies — so `e y` after `a x` and `d y x` collide;
//   * variables are renamed densely.  The renaming is chosen by color
//     refinement on the variable/clause incidence structure (quantifier
//     kind, dependency-set size, signed occurrence profile, refined through
//     the clauses for a few rounds), so it is invariant under variable
//     renumbering; ties between refinement-equivalent variables fall back
//     to first-occurrence order.  Automorphic ties render identical text
//     either way; a non-automorphic tie can at worst cause a false cache
//     MISS, never a false hit;
//   * literals are sorted within clauses, clauses are sorted and exact
//     duplicates dropped, dependency sets are sorted — all under the dense
//     renaming.
//
// The canonical key is a 128-bit hash (two independent 64-bit FNV-1a
// streams) of the rendered canonical text.  Equal keys are treated as equal
// formulas by the cache; the canonical text itself is available for the
// paranoid and for tests.
#pragma once

#include <cstdint>
#include <string>

#include "src/cnf/dimacs.hpp"

namespace hqs::cache {

/// 128-bit content hash of a canonical form.
struct CanonicalKey {
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const CanonicalKey&) const = default;
    bool empty() const { return hi == 0 && lo == 0; }
};

/// 32 lowercase hex digits (hi then lo) — the persistent store's file stem.
std::string toHex(const CanonicalKey& key);

/// Inverse of toHex; false unless @p text is exactly 32 hex digits.
bool keyFromHex(const std::string& text, CanonicalKey* out);

struct CanonicalForm {
    CanonicalKey key;
    std::string text;        ///< rendered canonical DQDIMACS-like text
    std::size_t numVars = 0; ///< variables in the canonical form
    std::size_t numClauses = 0;
};

/// Canonicalize @p parsed and hash the rendered form.
CanonicalForm canonicalize(const ParsedQdimacs& parsed);

/// canonicalize(parsed).key without keeping the text.
CanonicalKey canonicalKey(const ParsedQdimacs& parsed);

} // namespace hqs::cache

template <>
struct std::hash<hqs::cache::CanonicalKey> {
    std::size_t operator()(const hqs::cache::CanonicalKey& k) const noexcept
    {
        return static_cast<std::size_t>(k.hi ^ (k.lo * 0x9e3779b97f4a7c15ull));
    }
};
