#include "src/cache/result_cache.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include <unistd.h>

#include "src/base/fault.hpp"
#include "src/obs/obs.hpp"

namespace hqs::cache {

namespace {

constexpr const char* kMagic = "hqs-cache 1";
constexpr const char* kEnd = "end hqs-cache";

std::uint64_t fnv1a(const std::string& text)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : text) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(v));
    return std::string(buf, 16);
}

bool parseHex64(const std::string& text, std::uint64_t* out)
{
    if (text.size() != 16) return false;
    std::uint64_t v = 0;
    for (char c : text) {
        std::uint64_t digit;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
        v = (v << 4) | digit;
    }
    *out = v;
    return true;
}

/// Next '\n'-terminated line starting at @p pos; false at end of text.
/// Advances @p pos past the newline.
bool nextLine(const std::string& text, std::size_t* pos, std::string* line)
{
    if (*pos >= text.size()) return false;
    const std::size_t nl = text.find('\n', *pos);
    if (nl == std::string::npos) return false; // no unterminated final lines
    *line = text.substr(*pos, nl - *pos);
    *pos = nl + 1;
    return true;
}

/// "tag value" line split; false when the line does not start with @p tag.
bool taggedValue(const std::string& line, const std::string& tag, std::string* value)
{
    if (line.size() < tag.size() + 2 || line.compare(0, tag.size(), tag) != 0 ||
        line[tag.size()] != ' ')
        return false;
    *value = line.substr(tag.size() + 1);
    return true;
}

} // namespace

const char* toString(LoadStatus s)
{
    switch (s) {
    case LoadStatus::Hit: return "hit";
    case LoadStatus::Miss: return "miss";
    case LoadStatus::Expired: return "expired";
    case LoadStatus::Truncated: return "truncated";
    case LoadStatus::BadFormat: return "bad-format";
    case LoadStatus::KeyMismatch: return "key-mismatch";
    case LoadStatus::ChecksumMismatch: return "checksum-mismatch";
    case LoadStatus::IoError: return "io-error";
    }
    return "?";
}

const char* toString(CertReuse r)
{
    switch (r) {
    case CertReuse::Served: return "served";
    case CertReuse::None: return "none";
    case CertReuse::HashMismatch: return "hash-mismatch";
    case CertReuse::MalformedArtifact: return "malformed-artifact";
    }
    return "?";
}

// ----------------------------------------------------------- serialization

std::string serializeEntry(const CanonicalKey& key, const CacheEntry& entry)
{
    char solveMs[64];
    std::snprintf(solveMs, sizeof solveMs, "%.6g", entry.solveMilliseconds);
    std::string payload;
    payload += kMagic;
    payload += "\nkey " + toHex(key);
    payload += "\nresult " + hqs::toString(entry.result);
    payload += "\nengine " + entry.engine;
    payload += "\nsolve_ms ";
    payload += solveMs;
    payload += "\nstored_unix_ms " + std::to_string(entry.storedUnixMs);
    payload += "\ncert_hash " + hex64(entry.certFormulaHash);
    payload += "\ncert_bytes " + std::to_string(entry.certificate.size()) + "\n";
    payload += entry.certificate;
    payload += "\n";
    return payload + "fnv " + hex64(fnv1a(payload)) + "\n" + kEnd + "\n";
}

LoadStatus parseEntry(const std::string& text, const CanonicalKey& key,
                      CacheEntry* out)
{
    std::size_t pos = 0;
    std::string line, value;
    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    if (line != kMagic) return LoadStatus::BadFormat;

    CacheEntry entry;
    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    CanonicalKey storedKey;
    if (!taggedValue(line, "key", &value) || !keyFromHex(value, &storedKey))
        return LoadStatus::BadFormat;
    if (!(storedKey == key)) return LoadStatus::KeyMismatch;

    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    if (!taggedValue(line, "result", &value)) return LoadStatus::BadFormat;
    const std::optional<SolveResult> result = solveResultFromString(value);
    if (!result) return LoadStatus::BadFormat;
    entry.result = *result;

    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    if (!taggedValue(line, "engine", &entry.engine)) return LoadStatus::BadFormat;

    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    if (!taggedValue(line, "solve_ms", &value)) return LoadStatus::BadFormat;
    try {
        std::size_t used = 0;
        entry.solveMilliseconds = std::stod(value, &used);
        if (used != value.size()) return LoadStatus::BadFormat;
    } catch (const std::exception&) {
        return LoadStatus::BadFormat;
    }

    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    if (!taggedValue(line, "stored_unix_ms", &value)) return LoadStatus::BadFormat;
    try {
        std::size_t used = 0;
        entry.storedUnixMs = std::stoll(value, &used);
        if (used != value.size()) return LoadStatus::BadFormat;
    } catch (const std::exception&) {
        return LoadStatus::BadFormat;
    }

    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    if (!taggedValue(line, "cert_hash", &value) ||
        !parseHex64(value, &entry.certFormulaHash))
        return LoadStatus::BadFormat;

    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    std::size_t certBytes = 0;
    if (!taggedValue(line, "cert_bytes", &value)) return LoadStatus::BadFormat;
    try {
        std::size_t used = 0;
        certBytes = std::stoul(value, &used);
        if (used != value.size()) return LoadStatus::BadFormat;
    } catch (const std::exception&) {
        return LoadStatus::BadFormat;
    }
    if (pos + certBytes + 1 > text.size()) return LoadStatus::Truncated;
    entry.certificate = text.substr(pos, certBytes);
    pos += certBytes;
    if (text[pos] != '\n') return LoadStatus::BadFormat;
    ++pos;

    const std::string payload = text.substr(0, pos);
    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    std::uint64_t storedFnv = 0;
    if (!taggedValue(line, "fnv", &value) || !parseHex64(value, &storedFnv))
        return LoadStatus::BadFormat;
    if (storedFnv != fnv1a(payload)) return LoadStatus::ChecksumMismatch;
    if (!nextLine(text, &pos, &line)) return LoadStatus::Truncated;
    if (line != kEnd) return LoadStatus::BadFormat;

    if (out) *out = std::move(entry);
    return LoadStatus::Hit;
}

// ----------------------------------------------------------------- cache

ResultCache::ResultCache(CacheConfig config) : config_(std::move(config))
{
    if (!config_.clock) {
        config_.clock = [] {
            return static_cast<std::int64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count());
        };
    }
    if (!config_.dir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(config_.dir, ec);
    }
}

std::int64_t ResultCache::nowMs() const { return config_.clock(); }

std::size_t ResultCache::entryBytes(const CacheEntry& e)
{
    // Certificates dominate; the constant covers the fixed fields plus the
    // LRU/index bookkeeping per entry.
    return e.certificate.size() + e.engine.size() + 128;
}

bool ResultCache::expired(const CacheEntry& e, std::int64_t now) const
{
    return config_.ttlSeconds > 0 &&
           static_cast<double>(now - e.storedUnixMs) >
               config_.ttlSeconds * 1000.0;
}

std::string ResultCache::pathFor(const CanonicalKey& key) const
{
    return config_.dir + "/" + toHex(key) + ".hqscache";
}

std::optional<CacheEntry> ResultCache::lookup(const CanonicalKey& key)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        const auto it = index_.find(key);
        if (it != index_.end()) {
            if (expired(it->second->second, nowMs())) {
                bytes_ -= entryBytes(it->second->second);
                lru_.erase(it->second);
                index_.erase(it);
                ++stats_.expired;
                ++stats_.misses;
                stats_.bytes = bytes_;
                OBS_COUNT("cache.expired", 1);
                OBS_COUNT("cache.miss", 1);
                OBS_GAUGE_SET("cache.bytes", bytes_);
                return std::nullopt;
            }
            lru_.splice(lru_.begin(), lru_, it->second);
            ++stats_.hits;
            OBS_COUNT("cache.hit", 1);
            return it->second->second;
        }
    }

    if (!config_.dir.empty()) {
        CacheEntry entry;
        const LoadStatus status = loadPersistent(key, &entry);
        if (status == LoadStatus::Hit) {
            std::lock_guard<std::mutex> lock(mu_);
            insertLocked(key, entry);
            ++stats_.hits;
            ++stats_.persistHits;
            OBS_COUNT("cache.hit", 1);
            OBS_COUNT("cache.persist.hit", 1);
            return entry;
        }
    }

    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    OBS_COUNT("cache.miss", 1);
    return std::nullopt;
}

LoadStatus ResultCache::loadPersistent(const CanonicalKey& key, CacheEntry* out)
{
    if (config_.dir.empty()) return LoadStatus::Miss;
    // Injection point: a fleet-shared directory going bad must surface as a
    // structured failure in the requesting run, not kill the worker.
    fault::checkpoint("cache-load");
    const std::string path = pathFor(key);
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) return LoadStatus::Miss;
    std::ostringstream buf;
    buf << in.rdbuf();
    if (in.bad()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.persistErrors;
        OBS_COUNT("cache.persist.error", 1);
        return LoadStatus::IoError;
    }
    CacheEntry entry;
    LoadStatus status = parseEntry(buf.str(), key, &entry);
    if (status == LoadStatus::Hit && expired(entry, nowMs()))
        status = LoadStatus::Expired;
    if (status == LoadStatus::Hit) {
        if (out) *out = std::move(entry);
        return status;
    }
    // Corrupt or stale files are dead weight for every worker sharing the
    // directory; drop them best-effort.
    std::remove(path.c_str());
    std::lock_guard<std::mutex> lock(mu_);
    if (status == LoadStatus::Expired) {
        ++stats_.expired;
        OBS_COUNT("cache.expired", 1);
    } else {
        ++stats_.persistErrors;
        OBS_COUNT("cache.persist.error", 1);
    }
    return status;
}

void ResultCache::store(const CanonicalKey& key, CacheEntry entry)
{
    entry.storedUnixMs = nowMs();
    // Injection point mirroring cache-load, armed before any state changes.
    fault::checkpoint("cache-store");
    {
        std::lock_guard<std::mutex> lock(mu_);
        insertLocked(key, entry);
        ++stats_.stores;
        OBS_COUNT("cache.store", 1);
    }
    if (!config_.dir.empty()) storePersistent(key, entry);
}

void ResultCache::insertLocked(const CanonicalKey& key, CacheEntry entry)
{
    const auto it = index_.find(key);
    if (it != index_.end()) {
        bytes_ -= entryBytes(it->second->second);
        lru_.erase(it->second);
        index_.erase(it);
    }
    bytes_ += entryBytes(entry);
    lru_.emplace_front(key, std::move(entry));
    index_[key] = lru_.begin();
    evictOverBudgetLocked();
    stats_.bytes = bytes_;
    OBS_GAUGE_SET("cache.bytes", bytes_);
}

void ResultCache::evictOverBudgetLocked()
{
    if (config_.maxBytes == 0) return;
    // Never evict the entry just inserted, even when it alone exceeds the
    // budget: an over-sized answer is still worth one serving.
    while (bytes_ > config_.maxBytes && lru_.size() > 1) {
        bytes_ -= entryBytes(lru_.back().second);
        index_.erase(lru_.back().first);
        lru_.pop_back();
        ++stats_.evictions;
        OBS_COUNT("cache.evict", 1);
    }
}

void ResultCache::storePersistent(const CanonicalKey& key, const CacheEntry& entry)
{
    const std::string path = pathFor(key);
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out.is_open()) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.persistErrors;
            OBS_COUNT("cache.persist.error", 1);
            return;
        }
        out << serializeEntry(key, entry);
        out.flush();
        if (!out.good()) {
            std::remove(tmp.c_str());
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.persistErrors;
            OBS_COUNT("cache.persist.error", 1);
            return;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.persistErrors;
        OBS_COUNT("cache.persist.error", 1);
    }
}

CacheStats ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

std::size_t ResultCache::entryCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return lru_.size();
}

// ------------------------------------------------------- certificate reuse

CertReuse vetCachedCertificate(const CacheEntry& entry, std::uint64_t requestHash)
{
    if (entry.certificate.empty()) return CertReuse::None;
    // The artifact opens with "dqbf-cert 1\nhash <16 hex>\n"; read the
    // embedded hash straight off the text so vetting never pays a full
    // certificate parse.
    constexpr const char* kCertMagic = "dqbf-cert 1\nhash ";
    const std::size_t magicLen = 17;
    std::uint64_t embedded = 0;
    if (entry.certificate.compare(0, magicLen, kCertMagic) != 0 ||
        entry.certificate.size() < magicLen + 16 ||
        !parseHex64(entry.certificate.substr(magicLen, 16), &embedded)) {
        OBS_COUNT("cache.cert_rejects", 1);
        return CertReuse::MalformedArtifact;
    }
    if (embedded != requestHash || entry.certFormulaHash != requestHash) {
        OBS_COUNT("cache.cert_rejects", 1);
        return CertReuse::HashMismatch;
    }
    OBS_COUNT("cache.cert_hits", 1);
    return CertReuse::Served;
}

} // namespace hqs::cache
