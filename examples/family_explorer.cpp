// family_explorer: generate any PEC benchmark family instance, optionally
// dump its DQDIMACS encoding, and race HQS against the iDQ-style baseline.
//
//   family_explorer <family> <width> <sat|unsat> [boxes] [--dump] [--timeout=S]
//
// <family> is one of: adder bitcell lookahead pec_xor z4 comp c432.
// --dump writes the DQBF in DQDIMACS format to stdout instead of solving.
#include <iostream>
#include <optional>
#include <string>

#include "src/base/timer.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/idq/idq_solver.hpp"
#include "src/pec/pec_encoder.hpp"

using namespace hqs;

namespace {

std::optional<Family> familyFromName(const std::string& name)
{
    for (Family f : allFamilies()) {
        if (toString(f) == name) return f;
    }
    return std::nullopt;
}

int usage()
{
    std::cerr << "usage: family_explorer <family> <width>=3.. <sat|unsat> "
                 "[boxes>=2] [--dump] [--timeout=S]\n       families:";
    for (Family f : allFamilies()) std::cerr << ' ' << toString(f);
    std::cerr << "\n";
    return 1;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc < 4) return usage();
    const auto family = familyFromName(argv[1]);
    if (!family) return usage();
    const unsigned width = static_cast<unsigned>(std::stoul(argv[2]));
    if (width < 3) return usage();
    const std::string variant = argv[3];
    if (variant != "sat" && variant != "unsat") return usage();

    bool dump = false;
    double timeoutSeconds = 0;
    unsigned boxes = 2;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (!arg.empty() && arg[0] != '-') {
            boxes = static_cast<unsigned>(std::stoul(arg));
            if (boxes < 2) return usage();
        } else if (arg == "--dump") {
            dump = true;
        } else if (arg.rfind("--timeout=", 0) == 0) {
            timeoutSeconds = std::stod(arg.substr(10));
        } else {
            return usage();
        }
    }

    const PecInstance inst = makeInstance(*family, width, variant == "sat", boxes);
    PecEncoding enc = encodePec(inst);

    if (dump) {
        writeDqdimacs(std::cout, enc.formula.toParsed());
        return 0;
    }

    std::cout << inst.name << ": spec " << inst.spec.numGates() << " gates, impl "
              << inst.impl.numGates() << " gates + " << inst.impl.numBoxes()
              << " black boxes\n"
              << "DQBF: " << enc.formula.universals().size() << " universals, "
              << enc.formula.existentials().size() << " existentials, "
              << enc.formula.matrix().numClauses() << " clauses\n";

    const Deadline deadline =
        timeoutSeconds > 0 ? Deadline::in(timeoutSeconds) : Deadline::unlimited();

    {
        HqsOptions opts;
        opts.deadline = deadline;
        HqsSolver solver(opts);
        Timer t;
        const SolveResult r = solver.solve(enc.formula);
        std::cout << "HQS      : " << r << " in " << t.elapsedMilliseconds() << " ms ("
                  << solver.stats().universalsEliminated << " universal eliminations, "
                  << "peak " << solver.stats().peakConeSize << " AIG nodes)\n";
    }
    {
        PecEncoding enc2 = encodePec(inst);
        IdqOptions opts;
        opts.deadline = deadline;
        IdqSolver solver(opts);
        Timer t;
        const SolveResult r = solver.solve(enc2.formula);
        std::cout << "iDQ-like : " << r << " in " << t.elapsedMilliseconds() << " ms ("
                  << solver.stats().instantiations << " instantiations, "
                  << solver.stats().groundClauses << " ground clauses)\n";
    }
    std::cout << "expected : " << (inst.expectedRealizable ? "SAT" : "UNSAT") << "\n";
    return 0;
}
