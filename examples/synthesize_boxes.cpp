// Black-box synthesis walkthrough: beyond deciding realizability, a
// satisfied PEC DQBF carries Skolem functions that ARE the missing
// implementations.  We take an incomplete 4-bit adder (two full-adder
// cells are black boxes), synthesize the boxes from a Skolem certificate,
// print their truth tables, and exhaustively verify that the completed
// implementation matches the specification.
//
//   synthesize_boxes [output-dir]
//
// With an output directory, each synthesized box is also written as an
// ASCII AIGER (.aag) file, ready for downstream logic-synthesis tools.
#include <fstream>
#include <iostream>

#include "src/aig/aiger.hpp"
#include "src/pec/box_synthesis.hpp"

using namespace hqs;

namespace {

/// Build an AIG for a truth table over inputs 0..k-1 (mux tree).
AigEdge tableToAig(Aig& aig, const std::vector<bool>& table, std::size_t numInputs)
{
    std::vector<AigEdge> layer(table.size());
    for (std::size_t i = 0; i < table.size(); ++i) {
        layer[i] = table[i] ? aig.constTrue() : aig.constFalse();
    }
    for (std::size_t d = 0; d < numInputs; ++d) {
        std::vector<AigEdge> next(layer.size() / 2);
        const AigEdge sel = aig.variable(static_cast<Var>(d));
        for (std::size_t i = 0; i < next.size(); ++i) {
            next[i] = aig.mkIte(sel, layer[2 * i + 1], layer[2 * i]);
        }
        layer = std::move(next);
    }
    return layer[0];
}

} // namespace

int main(int argc, char** argv)
{
    const std::string outDir = argc > 1 ? argv[1] : "";
    const PecInstance inst = makeInstance(Family::Adder, 4, true);
    std::cout << "Instance " << inst.name << ": " << inst.impl.numBoxes()
              << " black boxes to synthesize\n\n";

    // Skolem functions reconstructed from HQS's own elimination trace (the
    // expansion-based synthesizeBoxes() exists too, but this scales).
    const auto boxes = synthesizeBoxesWithHqs(inst);
    if (!boxes) {
        std::cout << "not realizable — nothing to synthesize\n";
        return 1;
    }

    for (Circuit::BoxId b = 0; b < inst.impl.numBoxes(); ++b) {
        std::cout << "box '" << inst.impl.boxName(b) << "' ("
                  << inst.impl.boxInputs(b).size() << " inputs):\n";
        for (std::size_t out = 0; out < boxes->tables[b].size(); ++out) {
            std::cout << "  output " << out << " truth table (input index ascending): ";
            for (bool bit : boxes->tables[b][out]) std::cout << (bit ? '1' : '0');
            std::cout << '\n';
        }
    }

    const bool ok = boxesRealizeSpec(inst, *boxes);
    std::cout << "\nexhaustive equivalence check of completed design vs spec: "
              << (ok ? "PASS" : "FAIL") << '\n';

    if (!outDir.empty()) {
        for (Circuit::BoxId b = 0; b < inst.impl.numBoxes(); ++b) {
            Aig aig;
            std::vector<AigEdge> outs;
            for (const auto& table : boxes->tables[b]) {
                outs.push_back(tableToAig(aig, table, inst.impl.boxInputs(b).size()));
            }
            const std::string path = outDir + "/" + inst.impl.boxName(b) + ".aag";
            std::ofstream file(path);
            writeAiger(file, aig, outs);
            std::cout << "wrote " << path << " (" << aig.coneSize(outs.empty() ? aig.constTrue() : outs[0])
                      << "+ AND nodes)\n";
        }
    }

    // For a full adder cell the expected functions are sum = a^b^cin and
    // carry = maj(a,b,cin); the synthesized tables above realize exactly
    // those (up to don't-cares the solver was free to fill).
    const PecInstance broken = makeInstance(Family::Adder, 4, false);
    std::cout << "\nFor contrast, " << broken.name << " (boxes cannot see the carry): "
              << (synthesizeBoxesWithHqs(broken) ? "synthesized (unexpected!)"
                                                 : "correctly reported unrealizable")
              << '\n';
    return ok ? 0 : 1;
}
