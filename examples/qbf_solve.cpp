// qbf_solve: command-line QBF solver over QDIMACS files with selectable
// engine — the four backend families this repository implements.
//
//   qbf_solve [--engine=aig|bdd|qdpll|search] [--timeout=S] <file.qdimacs|->
//
// Exit code: 10 = SAT, 20 = UNSAT, 1 = other.
#include <iostream>
#include <string>

#include "src/aig/cnf_bridge.hpp"
#include "src/qbf/aig_qbf_solver.hpp"
#include "src/qbf/bdd_qbf_solver.hpp"
#include "src/qbf/qdpll_solver.hpp"
#include "src/qbf/search_qbf_solver.hpp"

using namespace hqs;

namespace {

int usage()
{
    std::cerr << "usage: qbf_solve [--engine=aig|bdd|qdpll|search] [--timeout=SECONDS] "
                 "<file.qdimacs|->\n";
    return 1;
}

} // namespace

int main(int argc, char** argv)
{
    std::string path;
    std::string engine = "aig";
    Deadline deadline = Deadline::unlimited();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--engine=", 0) == 0) {
            engine = arg.substr(9);
        } else if (arg.rfind("--timeout=", 0) == 0) {
            deadline = Deadline::in(std::stod(arg.substr(10)));
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            return usage();
        } else {
            path = arg;
        }
    }
    if (path.empty()) return usage();

    QbfProblem problem;
    try {
        const ParsedQdimacs parsed =
            (path == "-") ? parseDqdimacs(std::cin) : parseDqdimacsFile(path);
        problem = qbfFromParsed(parsed);
    } catch (const ParseError& e) {
        std::cerr << "parse error: " << e.what() << "\n";
        return 1;
    }

    std::cout << "c " << problem.matrix.numVars() << " vars, "
              << problem.matrix.numClauses() << " clauses, "
              << problem.prefix.numBlocks() << " quantifier blocks ("
              << problem.prefix.numAlternations() << " alternations)\n";

    SolveResult result = SolveResult::Unknown;
    if (engine == "aig") {
        Aig aig;
        const AigEdge matrix = buildFromCnf(aig, problem.matrix);
        AigQbfOptions opts;
        opts.deadline = deadline;
        AigQbfSolver solver(opts);
        result = solver.solve(aig, matrix, problem.prefix);
        std::cout << "c eliminations: " << solver.stats().existentialEliminations
                  << " existential, " << solver.stats().universalEliminations
                  << " universal; unit/pure: "
                  << solver.stats().unitEliminations + solver.stats().pureEliminations
                  << "; peak AIG nodes: " << solver.stats().peakConeSize << "\n";
    } else if (engine == "bdd") {
        BddQbfOptions opts;
        opts.deadline = deadline;
        BddQbfSolver solver(opts);
        result = solver.solve(problem.matrix, problem.prefix);
        std::cout << "c eliminations: " << solver.stats().eliminations
                  << "; peak BDD nodes: " << solver.stats().peakConeSize << "\n";
    } else if (engine == "qdpll") {
        QdpllSolver solver(deadline);
        result = solver.solve(problem.matrix, problem.prefix);
        std::cout << "c decisions: " << solver.stats().decisions
                  << ", propagations: " << solver.stats().propagations
                  << ", conflicts: " << solver.stats().conflicts << "\n";
    } else if (engine == "search") {
        Aig aig;
        const AigEdge matrix = buildFromCnf(aig, problem.matrix);
        result = searchQbfSolve(aig, matrix, problem.prefix, deadline);
    } else {
        return usage();
    }

    std::cout << "s " << result << "\n";
    if (result == SolveResult::Sat) return 10;
    if (result == SolveResult::Unsat) return 20;
    return 1;
}
