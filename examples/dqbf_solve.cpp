// dqbf_solve: command-line DQBF/QBF solver over DQDIMACS and DQCIR files.
//
//   dqbf_solve [options] <file.dqdimacs|file.dqcir>
//   dqbf_solve [options] -            (read from stdin)
//
// Options:
//   --solver=hqs|hqs-bdd|idq|expand|cegar
//                         solving engine (default hqs); `hqs-bdd` swaps in
//                         the BDD QBF backend, `expand` decides by one SAT
//                         call on the full universal expansion, `cegar`
//                         learns per-existential decision lists against a
//                         counterexample oracle
//   --format=dqdimacs|dqcir
//                         input format (default: content-sniffed — a
//                         '#QCIR' header line means DQCIR).  Circuit input
//                         lowers through the Tseitin front end and never
//                         touches --cache-dir (cache.bypass.format)
//   --portfolio[=N]       race the first N default engine configurations
//                         (all 5 when N is omitted) and answer with the
//                         first definitive result, cancelling the losers
//   --timeout=<seconds>   wall-clock limit (default: none)
//   --no-preprocess       disable CNF preprocessing
//   --no-unitpure         disable Theorem-6 unit/pure detection
//   --selection=maxsat|greedy|all
//                         universal-selection strategy (default maxsat)
//   --skolem              on SAT, compute Skolem functions, round-trip them
//                         through the certification subsystem (extract ->
//                         serialize -> independent check), and summarize
//                         them (hqs and cegar engines only)
//   --skolem=FILE         additionally dump the reconstructed functions as
//                         ASCII AIGER (aag) to FILE
//   --certify=FILE        write a self-contained certificate artifact to
//                         FILE on SAT (hqs and portfolio engines); the
//                         artifact is self-checked through the independent
//                         parser+checker before it is reported
//   --rss-limit=MB        guard the run with an RSS watchdog: cooperative
//                         MEMOUT when process RSS crosses MB
//   --strategy=FILE       solve under a strategy spec (JSON): --portfolio
//                         races the spec's engine lineup, and the spec's
//                         cache policy governs --cache-dir (see README
//                         "Result cache & strategy specs")
//   --cache-dir=DIR       consult/update a persistent result cache in DIR;
//                         a hit answers without solving (`c cache : hit`)
//   --cache-control=on|off|bypass
//                         per-run cache override: `off` skips the cache,
//                         `bypass` solves fresh but refreshes the entry
//   --stats               print solver statistics, including machine-readable
//                         `c stat <name> <value>` lines from the metrics
//                         registry (DIMACS-comment-safe)
//   --trace=FILE          record span traces of the solve and write them as
//                         Chrome trace_event JSON (open in Perfetto or
//                         chrome://tracing)
//
// Every engine call runs under the guard layer: an engine crash (or an
// injected HQS_FAULT) prints a structured `c failure` line and exits 1
// instead of terminating on an unhandled exception.
//
// Exit code: 10 = SAT, 20 = UNSAT (SAT-competition convention), 1 = other.
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "src/aig/aiger.hpp"
#include "src/cache/result_cache.hpp"
#include "src/cegar/cegar_solver.hpp"
#include "src/circuit/dqcir_parser.hpp"
#include "src/cert/certificate.hpp"
#include "src/cert/extract.hpp"
#include "src/cnf/dimacs.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/dqbf/skolem_recorder.hpp"
#include "src/idq/idq_solver.hpp"
#include "src/obs/obs.hpp"
#include "src/obs/report.hpp"
#include "src/runtime/api.hpp"
#include "src/runtime/guard.hpp"
#include "src/runtime/portfolio.hpp"
#include "src/strategy/spec.hpp"

using namespace hqs;

namespace {

int usage()
{
    std::cerr << "usage: dqbf_solve [--solver=hqs|hqs-bdd|idq|expand|cegar] "
                 "[--portfolio[=N]] [--format=dqdimacs|dqcir] "
                 "[--timeout=SECONDS] [--rss-limit=MB] [--no-preprocess] "
                 "[--no-unitpure] [--selection=maxsat|greedy|all] "
                 "[--skolem[=FILE]] [--certify=FILE] [--strategy=FILE] "
                 "[--cache-dir=DIR] [--cache-control=on|off|bypass] "
                 "[--stats] [--trace=FILE] <file.dqdimacs|file.dqcir|->\n";
    return 1;
}

/// Round-trip a serialized certificate through the independent parser and
/// checker — the same code path dqbf_check runs, so "VALID" here means the
/// artifact would be accepted downstream.
cert::CheckResult selfCheck(const std::string& text)
{
    cert::Certificate reparsed;
    std::string detail;
    const cert::CheckStatus parsed = cert::parseCertificateString(text, reparsed, detail);
    if (parsed != cert::CheckStatus::Ok) {
        cert::CheckResult res;
        res.status = parsed;
        res.detail = std::move(detail);
        return res;
    }
    return cert::checkCertificate(reparsed);
}

} // namespace

int main(int argc, char** argv)
{
    // All budgets and the engine selector accumulate into the shared
    // SolveRequest; flag values that fail the syntax parsers are usage
    // errors, semantic violations (nan timeout, unknown engine) are caught
    // by the single validate() below.
    api::SolveRequest request;
    std::string tracePath;
    std::string skolemPath;
    std::string certifyPath;
    std::string strategyPath;
    std::string cacheDir;
    HqsOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--solver=", 0) == 0) {
            request.engine = arg.substr(9);
        } else if (arg == "--portfolio") {
            request.engine = "portfolio";
        } else if (arg.rfind("--portfolio=", 0) == 0) {
            request.engine = "portfolio:" + arg.substr(12);
        } else if (arg.rfind("--timeout=", 0) == 0) {
            if (!api::parseSeconds(arg.substr(10), &request.timeoutSeconds)) return usage();
        } else if (arg.rfind("--rss-limit=", 0) == 0) {
            if (!api::parseMegabytes(arg.substr(12), &request.rssLimitBytes)) return usage();
        } else if (arg == "--no-preprocess") {
            opts.preprocess = false;
            opts.gateDetection = false;
        } else if (arg == "--no-unitpure") {
            opts.unitPure = false;
        } else if (arg.rfind("--selection=", 0) == 0) {
            const std::string s = arg.substr(12);
            if (s == "maxsat") {
                opts.selection = HqsOptions::Selection::MaxSat;
            } else if (s == "greedy") {
                opts.selection = HqsOptions::Selection::Greedy;
            } else if (s == "all") {
                opts.selection = HqsOptions::Selection::All;
            } else {
                return usage();
            }
        } else if (arg == "--skolem") {
            opts.computeSkolem = true;
        } else if (arg.rfind("--skolem=", 0) == 0) {
            skolemPath = arg.substr(9);
            if (skolemPath.empty()) return usage();
            opts.computeSkolem = true;
        } else if (arg.rfind("--certify=", 0) == 0) {
            certifyPath = arg.substr(10);
            if (certifyPath.empty()) return usage();
            request.certify = true;
        } else if (arg.rfind("--strategy=", 0) == 0) {
            strategyPath = arg.substr(11);
            if (strategyPath.empty()) return usage();
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cacheDir = arg.substr(12);
            if (cacheDir.empty()) return usage();
        } else if (arg.rfind("--cache-control=", 0) == 0) {
            request.cacheControl = arg.substr(16);
        } else if (arg.rfind("--format=", 0) == 0) {
            request.format = arg.substr(9);
        } else if (arg == "--stats") {
            request.stats = true;
        } else if (arg.rfind("--trace=", 0) == 0) {
            tracePath = arg.substr(8);
            if (tracePath.empty()) return usage();
            request.trace = true;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            return usage();
        } else {
            request.source = arg;
        }
    }
    if (request.source.empty()) return usage();
    if (const std::string err = request.firstError(); !err.empty()) {
        std::cerr << "dqbf_solve: invalid request: " << err << "\n";
        return usage();
    }
    const api::EngineSpec spec = *request.parsedEngine();
    // Certification needs the Skolem-recording elimination run.
    if (request.certify) opts.computeSkolem = true;
    const bool wantStats = request.stats;
    const std::string& path = request.source;
    if (request.timeoutSeconds > 0) opts.deadline = Deadline::in(request.timeoutSeconds);

    std::optional<strategy::StrategySpec> strategySpec;
    if (!strategyPath.empty()) {
        strategy::StrategySpec loaded;
        std::vector<strategy::SpecError> errors;
        if (!strategy::loadStrategySpecFile(strategyPath, &loaded, &errors)) {
            std::cerr << "dqbf_solve: invalid strategy spec " << strategyPath
                      << ":\n" << strategy::toString(errors);
            return 1;
        }
        strategySpec = std::move(loaded);
    }
    std::shared_ptr<cache::ResultCache> rcache;
    if (!cacheDir.empty()) {
        cache::CacheConfig cfg;
        cfg.dir = cacheDir;
        if (strategySpec) {
            cfg.maxBytes = strategySpec->cache.maxBytes;
            cfg.ttlSeconds = strategySpec->cache.ttlSeconds;
        }
        rcache = std::make_shared<cache::ResultCache>(cfg);
    }
    using CacheMode = strategy::CachePolicy::Mode;
    CacheMode cmode = strategySpec ? strategySpec->cache.mode : CacheMode::On;
    if (request.cacheControl == "on") cmode = CacheMode::On;
    else if (request.cacheControl == "off") cmode = CacheMode::Off;
    else if (request.cacheControl == "bypass") cmode = CacheMode::Bypass;
    bool cacheRead = rcache && cmode == CacheMode::On;
    bool cacheWrite = rcache && cmode != CacheMode::Off;

    DqbfFormula formula;
    cache::CanonicalKey cacheKey;
    std::uint64_t certHash = 0;
    try {
        std::string text;
        if (path == "-") {
            std::stringstream ss;
            ss << std::cin.rdbuf();
            text = ss.str();
        } else {
            std::ifstream in(path);
            if (!in) throw ParseError("cannot open file: " + path);
            std::stringstream ss;
            ss << in.rdbuf();
            text = ss.str();
        }
        const bool dqcir = request.format == "dqcir" ||
                           (request.format.empty() && looksLikeDqcir(text));
        if (dqcir && (cacheRead || cacheWrite)) {
            // The cache key canonicalizes CNF; a lowering's Tseitin
            // numbering is an implementation detail not worth persisting.
            OBS_COUNT("cache.bypass.format", 1);
            std::cout << "c cache               : bypassed (circuit input)\n";
            cacheRead = cacheWrite = false;
        }
        const ParsedQdimacs parsed = dqcir ? lowerDqcir(parseDqcirString(text))
                                           : parseDqdimacsString(text);
        if (cacheRead || cacheWrite) {
            cacheKey = cache::canonicalKey(parsed);
            certHash = cert::formulaHash(parsed);
        }
        formula = DqbfFormula::fromParsed(parsed);
    } catch (...) {
        // Not only ParseError: an injected parse-site fault (HQS_FAULT=parse)
        // must produce the same structured report, not std::terminate.
        const FailureInfo f = classifyException(std::current_exception());
        std::cerr << "parse failed: kind=" << toString(f.kind) << " what=\"" << f.what
                  << "\"\n";
        return 1;
    }

    std::cout << "c " << formula.universals().size() << " universals, "
              << formula.existentials().size() << " existentials, "
              << formula.matrix().numClauses() << " clauses\n";

    if (cacheRead) {
        try {
            if (std::optional<cache::CacheEntry> entry = rcache->lookup(cacheKey);
                entry && isConclusive(entry->result)) {
                bool serveFromCache = true;
                if (request.certify && entry->result == SolveResult::Sat) {
                    // Re-verify the hash binding before reusing the cached
                    // artifact; a mismatch withholds it (typed rejection).
                    // A certify request that the entry cannot satisfy falls
                    // through to a fresh solve rather than serving a bare
                    // verdict the caller asked to see certified.
                    switch (cache::vetCachedCertificate(*entry, certHash)) {
                        case cache::CertReuse::Served: {
                            const cert::CheckResult check =
                                selfCheck(entry->certificate);
                            std::ofstream out(certifyPath);
                            if (out) {
                                std::cout << "c cache               : hit ("
                                          << (entry->engine.empty() ? "?"
                                                                    : entry->engine)
                                          << ", " << entry->solveMilliseconds
                                          << " ms original solve)\n";
                                out << entry->certificate;
                                std::cout << "c certificate         : "
                                          << entry->certificate.size()
                                          << " bytes from cache, self-check "
                                          << (check.ok() ? "ok" : "FAILED")
                                          << " -> " << certifyPath << "\n";
                            } else {
                                std::cerr << "cannot write certificate file: "
                                          << certifyPath << "\n";
                            }
                            break;
                        }
                        case cache::CertReuse::None:
                            std::cout << "c cache               : verdict hit, no "
                                         "cached artifact; solving fresh to "
                                         "certify\n";
                            serveFromCache = false;
                            break;
                        case cache::CertReuse::HashMismatch:
                        case cache::CertReuse::MalformedArtifact:
                            std::cout << "c cache               : cached artifact "
                                         "rejected (hash binding failed); solving "
                                         "fresh to certify\n";
                            serveFromCache = false;
                            break;
                    }
                } else {
                    std::cout << "c cache               : hit ("
                              << (entry->engine.empty() ? "?" : entry->engine)
                              << ", " << entry->solveMilliseconds
                              << " ms original solve)\n";
                }
                if (serveFromCache) {
                    std::cout << "s " << entry->result << "\n";
                    if (entry->result == SolveResult::Sat) return 10;
                    if (entry->result == SolveResult::Unsat) return 20;
                }
            }
        } catch (const std::exception& e) {
            // A cache-layer failure (real or injected HQS_FAULT=cache-load)
            // degrades to a miss: report it and solve normally.
            std::cout << "c cache               : error, solving fresh (" << e.what()
                      << ")\n";
        }
    }

    if (!tracePath.empty()) obs::enableTracing(true);
    // Metric updates of this solve (including portfolio racer threads) land
    // in a local scope, so the `c stat` lines describe this instance alone.
    obs::MetricScope metricScope;

    SolveResult result = SolveResult::Unknown;
    FailureInfo failure;
    Timer solveTimer;
    std::string cacheEngineName = request.engine;
    std::string cacheCertText;
    // Every engine call runs guarded: exceptions become a structured
    // `c failure` line, and --rss-limit arms the cooperative-memout
    // watchdog.
    GuardOptions gopts;
    gopts.deadline = opts.deadline;
    gopts.rssLimitBytes = request.rssLimitBytes;
    auto guarded = [&](const std::function<SolveResult(const Deadline&)>& body) {
        const GuardedOutcome out = runGuarded(gopts, body);
        failure = out.failure;
        return out.result;
    };
    if (spec.kind == api::EngineSpec::Kind::Hqs || spec.kind == api::EngineSpec::Kind::HqsBdd) {
        if (spec.kind == api::EngineSpec::Kind::HqsBdd)
            opts.backend = HqsOptions::Backend::BddElimination;
        const DqbfFormula original = formula; // kept for certificate checks
        std::optional<HqsSolver> solverSlot;
        result = guarded([&](const Deadline& dl) {
            HqsOptions runOpts = opts;
            runOpts.deadline = dl;
            solverSlot.emplace(runOpts);
            return solverSlot->solve(std::move(formula));
        });
        if (!solverSlot) solverSlot.emplace(opts); // body died before construction
        HqsSolver& solver = *solverSlot;
        if (opts.computeSkolem && result == SolveResult::Sat &&
            solver.skolemCertificate()) {
            // Production certification path: extract the certificate, then
            // judge it through the independent serializer/parser/checker —
            // exactly what dqbf_check would see.
            const cert::Certificate certificate =
                cert::extractCertificate(original, *solver.skolemCertificate());
            const std::string artifact = cert::toCertificateString(certificate);
            cacheCertText = artifact;
            const cert::CheckResult check = selfCheck(artifact);
            if (!check.ok()) OBS_COUNT("cert.selfcheck_fail", 1);
            std::cout << "c skolem certificate  : " << certificate.functions.size()
                      << " functions, independently checked: "
                      << (check.ok() ? std::string("VALID")
                                     : "INVALID (" + std::string(cert::toString(check.status)) +
                                           (check.detail.empty() ? "" : ": " + check.detail) +
                                           ")")
                      << "\n";
            const std::vector<Var>& ys = original.existentials();
            for (std::size_t k = 0; k < ys.size(); ++k) {
                const AigEdge fn = certificate.functions[k];
                std::cout << "c   s_" << (ys[k] + 1) << " : "
                          << certificate.aig->coneSize(fn) << " AIG nodes over";
                for (Var x : certificate.aig->support(fn)) std::cout << ' ' << (x + 1);
                std::cout << "\n";
            }
            if (!skolemPath.empty()) {
                std::ofstream out(skolemPath);
                if (out) {
                    writeAiger(out, *certificate.aig, certificate.functions);
                    std::cout << "c skolem aag          : " << skolemPath << "\n";
                } else {
                    std::cerr << "cannot write skolem file: " << skolemPath << "\n";
                }
            }
            if (!certifyPath.empty()) {
                std::ofstream out(certifyPath);
                if (out) {
                    out << artifact;
                    std::cout << "c certificate         : " << artifact.size()
                              << " bytes, "
                              << cert::countAndNodes(*certificate.aig,
                                                     certificate.functions)
                              << " AIG nodes, self-check "
                              << (check.ok() ? "ok" : "FAILED") << " -> " << certifyPath
                              << "\n";
                } else {
                    std::cerr << "cannot write certificate file: " << certifyPath << "\n";
                }
            }
        }
        if (wantStats) {
            const HqsStats& st = solver.stats();
            std::cout << "c decided by          : " << st.decidedBy << "\n"
                      << "c preprocessing       : " << st.preprocess.unitsPropagated
                      << " units, " << st.preprocess.universalLiteralsReduced
                      << " universal reductions, " << st.preprocess.equivalencesSubstituted
                      << " equivalences, " << st.preprocess.gatesDetected << " gates\n"
                      << "c incomparable pairs  : " << st.incomparablePairs << "\n"
                      << "c selected universals : " << st.selectedUniversals << " (MaxSAT "
                      << st.maxsatMilliseconds << " ms)\n"
                      << "c eliminations        : " << st.universalsEliminated
                      << " universal (Thm 1), " << st.existentialsEliminated
                      << " existential (Thm 2), " << st.unitEliminations << " unit + "
                      << st.pureEliminations << " pure (Thm 5/6, "
                      << st.unitPureMilliseconds << " ms)\n"
                      << "c existential copies  : " << st.copiesIntroduced << "\n"
                      << "c peak AIG nodes      : " << st.peakConeSize << "\n"
                      << "c total time          : " << st.totalMilliseconds << " ms\n";
        }
    } else if (spec.kind == api::EngineSpec::Kind::Expand) {
        if (formula.universals().size() > 22) {
            std::cerr << "expand: too many universals ("
                      << formula.universals().size() << " > 22)\n";
            return 1;
        }
        result = guarded(
            [&](const Deadline& dl) { return expansionDqbf(formula, dl); });
    } else if (spec.kind == api::EngineSpec::Kind::Portfolio) {
        std::optional<PortfolioSolver> solverSlot;
        result = guarded([&](const Deadline& dl) {
            PortfolioOptions popts = PortfolioSolver::optionsFromRequest(request);
            popts.deadline = dl; // the guard owns the timeout
            if (strategySpec) {
                popts.engines = PortfolioSolver::enginesFromSpec(*strategySpec,
                                                                 popts.nodeLimit);
                popts.strategyName = strategySpec->name;
            }
            solverSlot.emplace(std::move(popts));
            return solverSlot->solve(formula);
        });
        if (!solverSlot) solverSlot.emplace();
        PortfolioSolver& solver = *solverSlot;
        if (solver.stats().failure && !failure) failure = solver.stats().failure;
        const PortfolioStats& st = solver.stats();
        if (!st.winnerName.empty()) cacheEngineName = st.winnerName;
        cacheCertText = st.winnerCertificate;
        std::cout << "c portfolio winner    : "
                  << (st.winnerName.empty() ? "(none)" : st.winnerName) << "\n";
        if (request.certify && result == SolveResult::Sat) {
            if (!st.winnerCertificate.empty() && !certifyPath.empty()) {
                const cert::CheckResult check = selfCheck(st.winnerCertificate);
                if (!check.ok()) OBS_COUNT("cert.selfcheck_fail", 1);
                std::ofstream out(certifyPath);
                if (out) {
                    out << st.winnerCertificate;
                    std::cout << "c certificate         : " << st.winnerCertificate.size()
                              << " bytes from " << st.winnerName << ", self-check "
                              << (check.ok() ? "ok" : "FAILED") << " -> " << certifyPath
                              << "\n";
                } else {
                    std::cerr << "cannot write certificate file: " << certifyPath << "\n";
                }
            } else if (st.winnerCertificate.empty()) {
                std::cout << "c certificate         : unavailable (winning engine "
                             "cannot certify)\n";
            }
        }
        if (wantStats) {
            for (const EngineRunStats& es : st.engines) {
                std::cout << "c engine " << es.name << " : " << toString(es.result)
                          << " in " << es.elapsedMilliseconds << " ms";
                if (es.winner) {
                    std::cout << "  [winner]";
                } else if (es.cancelLatencyMilliseconds > 0) {
                    std::cout << "  (cancel latency " << es.cancelLatencyMilliseconds
                              << " ms)";
                }
                if (!es.certCheck.empty())
                    std::cout << "  (cert-check " << es.certCheck << ")";
                std::cout << "\n";
            }
            std::cout << "c total time          : " << st.totalMilliseconds << " ms\n";
            if (st.disagreement)
                std::cout << "c WARNING             : engines disagreed on the verdict\n";
        }
    } else if (spec.kind == api::EngineSpec::Kind::Cegar) {
        std::optional<CegarSolver> solverSlot;
        result = guarded([&](const Deadline& dl) {
            CegarOptions copts;
            copts.deadline = dl;
            copts.computeSkolem = opts.computeSkolem;
            solverSlot.emplace(copts);
            return solverSlot->solve(formula);
        });
        if (!solverSlot) solverSlot.emplace();
        CegarSolver& solver = *solverSlot;
        if (opts.computeSkolem && result == SolveResult::Sat &&
            solver.skolemCertificate()) {
            // Same production certification path as the hqs engine, fed by
            // the learned decision lists instead of an elimination trace.
            const cert::Certificate certificate =
                cert::extractCertificate(formula, *solver.skolemCertificate());
            const std::string artifact = cert::toCertificateString(certificate);
            cacheCertText = artifact;
            const cert::CheckResult check = selfCheck(artifact);
            if (!check.ok()) OBS_COUNT("cert.selfcheck_fail", 1);
            std::cout << "c skolem certificate  : " << certificate.functions.size()
                      << " functions, independently checked: "
                      << (check.ok() ? std::string("VALID")
                                     : "INVALID (" + std::string(cert::toString(check.status)) +
                                           (check.detail.empty() ? "" : ": " + check.detail) +
                                           ")")
                      << "\n";
            if (!skolemPath.empty()) {
                std::ofstream out(skolemPath);
                if (out) {
                    writeAiger(out, *certificate.aig, certificate.functions);
                    std::cout << "c skolem aag          : " << skolemPath << "\n";
                } else {
                    std::cerr << "cannot write skolem file: " << skolemPath << "\n";
                }
            }
            if (!certifyPath.empty()) {
                std::ofstream out(certifyPath);
                if (out) {
                    out << artifact;
                    std::cout << "c certificate         : " << artifact.size()
                              << " bytes, "
                              << cert::countAndNodes(*certificate.aig,
                                                     certificate.functions)
                              << " AIG nodes, self-check "
                              << (check.ok() ? "ok" : "FAILED") << " -> " << certifyPath
                              << "\n";
                } else {
                    std::cerr << "cannot write certificate file: " << certifyPath << "\n";
                }
            }
        }
        if (wantStats) {
            const CegarStats& st = solver.stats();
            std::cout << "c refinements         : " << st.refinements << "\n"
                      << "c rules learned       : " << st.rulesLearned << "\n"
                      << "c counterexamples     : " << st.counterexamples << "\n"
                      << "c abstraction vars    : " << st.abstractionVars << "\n";
        }
    } else {
        std::optional<IdqSolver> solverSlot;
        result = guarded([&](const Deadline& dl) {
            IdqOptions iopts;
            iopts.deadline = dl;
            solverSlot.emplace(iopts);
            return solverSlot->solve(formula);
        });
        if (!solverSlot) solverSlot.emplace();
        IdqSolver& solver = *solverSlot;
        if (wantStats) {
            const IdqStats& st = solver.stats();
            std::cout << "c iterations          : " << st.iterations << "\n"
                      << "c instantiations      : " << st.instantiations << "\n"
                      << "c ground clauses      : " << st.groundClauses << "\n"
                      << "c existential copies  : " << st.existentialCopies << "\n";
        }
    }

    if (wantStats) obs::writeStatLines(std::cout, metricScope.snapshot());
    if (!tracePath.empty()) {
        std::ofstream traceOut(tracePath);
        if (traceOut) {
            obs::writeChromeTrace(traceOut);
            std::cout << "c trace               : " << obs::traceSpanCount()
                      << " spans -> " << tracePath << "\n";
        } else {
            std::cerr << "cannot write trace file: " << tracePath << "\n";
        }
    }
    if (failure) {
        std::cout << "c failure             : kind=" << toString(failure.kind)
                  << (failure.site.empty() ? "" : " site=" + failure.site) << " what=\""
                  << failure.what << "\"\n";
    }
    if (cacheWrite && isConclusive(result)) {
        try {
            cache::CacheEntry entry;
            entry.result = result;
            entry.engine = cacheEngineName;
            entry.solveMilliseconds = solveTimer.elapsedMilliseconds();
            entry.certFormulaHash = certHash;
            entry.certificate = cacheCertText;
            rcache->store(cacheKey, entry);
            std::cout << "c cache               : stored\n";
        } catch (const std::exception& e) {
            // A cache write failure (real or injected HQS_FAULT=cache-store)
            // never taints the verdict.
            std::cout << "c cache               : store failed (" << e.what() << ")\n";
        }
    }
    std::cout << "s " << result << "\n";
    if (result == SolveResult::Sat) return 10;
    if (result == SolveResult::Unsat) return 20;
    return 1;
}
