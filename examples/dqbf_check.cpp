// dqbf_check: independent verifier for DQBF Skolem certificates.
//
//   dqbf_check [options] <file.cert>
//   dqbf_check [options] -            (read the certificate from stdin)
//
// Options:
//   --formula=FILE     additionally require the certificate to be bound to
//                      this DQDIMACS formula (hash comparison)
//   --timeout=SECONDS  wall-clock limit for the single SAT call
//   --quiet            suppress the `c` summary lines
//
// The checker re-derives the verdict from the certificate alone: it parses
// the embedded formula, checks the hash binding, checks every Skolem
// function's support against its declared dependency set, substitutes the
// functions into the matrix, and asserts the negation is UNSAT with one SAT
// call.  It deliberately links none of the DQBF/QBF solver code (enforced
// by the cert/link-audit test), so a solver bug cannot self-certify.
//
// Exit code: 0 = certificate VALID, 2 = certificate INVALID (a structured
// reason is printed), 1 = usage or I/O error.
#include <fstream>
#include <iostream>
#include <string>

#include "src/cert/certificate.hpp"
#include "src/cnf/dimacs.hpp"

using namespace hqs;

namespace {

int usage()
{
    std::cerr << "usage: dqbf_check [--formula=FILE] [--timeout=SECONDS] [--quiet] "
                 "<file.cert|->\n";
    return 1;
}

int reject(cert::CheckStatus status, const std::string& detail)
{
    std::cout << "s INVALID\n";
    std::cout << "c reason " << cert::toString(status)
              << (detail.empty() ? "" : ": " + detail) << "\n";
    return 2;
}

} // namespace

int main(int argc, char** argv)
{
    std::string certPath;
    std::string formulaPath;
    double timeoutSeconds = 0;
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--formula=", 0) == 0) {
            formulaPath = arg.substr(10);
            if (formulaPath.empty()) return usage();
        } else if (arg.rfind("--timeout=", 0) == 0) {
            try {
                timeoutSeconds = std::stod(arg.substr(10));
            } catch (...) {
                return usage();
            }
            if (!(timeoutSeconds > 0)) return usage();
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            return usage();
        } else if (certPath.empty()) {
            certPath = arg;
        } else {
            return usage();
        }
    }
    if (certPath.empty()) return usage();

    cert::Certificate certificate;
    std::string detail;
    cert::CheckStatus parsed;
    if (certPath == "-") {
        parsed = cert::parseCertificate(std::cin, certificate, detail);
    } else {
        std::ifstream in(certPath);
        if (!in) {
            std::cerr << "dqbf_check: cannot open " << certPath << "\n";
            return 1;
        }
        parsed = cert::parseCertificate(in, certificate, detail);
    }
    if (parsed != cert::CheckStatus::Ok) return reject(parsed, detail);

    if (!formulaPath.empty()) {
        ParsedQdimacs expected;
        try {
            expected = parseDqdimacsFile(formulaPath);
        } catch (const ParseError& e) {
            std::cerr << "dqbf_check: cannot parse " << formulaPath << ": " << e.what()
                      << "\n";
            return 1;
        }
        if (cert::formulaHash(expected) != certificate.hash) {
            return reject(cert::CheckStatus::HashMismatch,
                          "certificate is not bound to " + formulaPath);
        }
    }

    const Deadline deadline =
        timeoutSeconds > 0 ? Deadline::in(timeoutSeconds) : Deadline::unlimited();
    const cert::CheckResult res = cert::checkCertificate(certificate, deadline);
    if (!quiet) {
        std::cout << "c functions           : " << certificate.functions.size() << "\n"
                  << "c certificate size    : " << res.sizeNodes << " AIG nodes\n"
                  << "c check time          : " << res.checkMs << " ms\n";
    }
    if (!res.ok()) return reject(res.status, res.detail);
    std::cout << "s VALID\n";
    return 0;
}
