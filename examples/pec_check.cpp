// Partial equivalence checking walkthrough — the paper's reference
// application.
//
// We build an incomplete 4-bit ripple-carry adder whose two middle
// full-adder cells are unimplemented black boxes, encode "can the black
// boxes be implemented so the design matches the specification?" as a DQBF
// (the PEC encoding of [10]), and decide it with HQS and with the
// iDQ-style instantiation baseline.  We then repeat the exercise with
// black boxes that cannot see the incoming carry — an unrealizable design.
#include <iostream>

#include "src/dqbf/hqs_solver.hpp"
#include "src/idq/idq_solver.hpp"
#include "src/pec/pec_encoder.hpp"

using namespace hqs;

namespace {

void report(const PecInstance& inst)
{
    std::cout << "Instance " << inst.name << ":\n";
    std::cout << "  spec: " << inst.spec.numGates() << " gates, "
              << inst.spec.inputs().size() << " inputs, " << inst.spec.outputs().size()
              << " outputs\n";
    std::cout << "  impl: " << inst.impl.numGates() << " gates, " << inst.impl.numBoxes()
              << " black boxes\n";

    PecEncoding enc = encodePec(inst);
    std::cout << "  DQBF: " << enc.formula.universals().size() << " universals, "
              << enc.formula.existentials().size() << " existentials, "
              << enc.formula.matrix().numClauses() << " clauses\n";
    for (Circuit::BoxId b = 0; b < inst.impl.numBoxes(); ++b) {
        std::cout << "    box '" << inst.impl.boxName(b) << "': "
                  << enc.boxOutputVars[b].size() << " outputs depending on "
                  << enc.boxInputCopies[b].size() << " input copies\n";
    }

    HqsSolver hqsSolver;
    const SolveResult hqsResult = hqsSolver.solve(enc.formula);
    std::cout << "  HQS:      " << hqsResult << " in " << hqsSolver.stats().totalMilliseconds
              << " ms (decided by " << hqsSolver.stats().decidedBy << ")\n";

    PecEncoding enc2 = encodePec(inst); // fresh copy for the baseline
    IdqOptions idqOpts;
    idqOpts.deadline = Deadline::in(10); // iDQ-style solving can be much slower
    IdqSolver idqSolver(idqOpts);
    const SolveResult idqResult = idqSolver.solve(enc2.formula);
    std::cout << "  iDQ-like: " << idqResult << " after " << idqSolver.stats().iterations
              << " refinement rounds, " << idqSolver.stats().instantiations
              << " instantiations\n";
    std::cout << "  => the incomplete design is "
              << (hqsResult == SolveResult::Sat ? "REALIZABLE" : "NOT realizable")
              << " (expected: " << (inst.expectedRealizable ? "realizable" : "not realizable")
              << ")\n\n";
}

} // namespace

int main()
{
    // Realizable: the black-box cells see (a_i, b_i, carry).
    report(makeInstance(Family::Adder, 4, true));
    // Unrealizable: the cells lost their carry input — no implementation of
    // the boxes can reproduce the adder.
    report(makeInstance(Family::Adder, 4, false));
    return 0;
}
