// Quickstart: build a DQBF with the library API and solve it with HQS.
//
// The formula is the paper's running Example 1 shape:
//
//   forall x1 x2  exists y1(x1)  exists y2(x2) :
//       (y1 == x1) and (y2 == x2)
//
// Each existential sees only "its" universal — dependencies no linear QBF
// prefix can express — yet the formula is satisfied (y1 copies x1, y2
// copies x2).  We then break it by removing y1's dependency, which makes
// the copycat impossible.
#include <iostream>

#include "src/dqbf/hqs_solver.hpp"

using namespace hqs;

namespace {

void addEquality(DqbfFormula& f, Var a, Var b)
{
    f.matrix().addClause({Lit::neg(a), Lit::pos(b)});
    f.matrix().addClause({Lit::pos(a), Lit::neg(b)});
}

} // namespace

int main()
{
    // --- a satisfiable DQBF with genuinely non-linear dependencies --------
    DqbfFormula good;
    const Var x1 = good.addUniversal();
    const Var x2 = good.addUniversal();
    const Var y1 = good.addExistential({x1}); // y1 may only read x1
    const Var y2 = good.addExistential({x2}); // y2 may only read x2
    addEquality(good, y1, x1);
    addEquality(good, y2, x2);

    std::cout << "Formula 1: forall x1 x2  exists y1(x1) y2(x2) : "
                 "(y1==x1) & (y2==x2)\n";
    HqsSolver solver;
    std::cout << "  HQS result: " << solver.solve(good) << "  (expected SAT)\n";
    std::cout << "  decided by: " << solver.stats().decidedBy
              << ", universal eliminations: " << solver.stats().universalsEliminated
              << ", unit/pure eliminations: "
              << solver.stats().unitEliminations + solver.stats().pureEliminations << "\n\n";

    // --- the same matrix, but y1 loses its dependency ----------------------
    DqbfFormula bad;
    const Var bx1 = bad.addUniversal();
    const Var bx2 = bad.addUniversal();
    const Var by1 = bad.addExistential({}); // y1 sees nothing
    const Var by2 = bad.addExistential({bx2});
    addEquality(bad, by1, bx1);
    addEquality(bad, by2, bx2);

    std::cout << "Formula 2: forall x1 x2  exists y1() y2(x2) : "
                 "(y1==x1) & (y2==x2)\n";
    HqsSolver solver2;
    std::cout << "  HQS result: " << solver2.solve(bad) << "  (expected UNSAT)\n";
    std::cout << "  decided by: " << solver2.stats().decidedBy << "\n";
    return 0;
}
