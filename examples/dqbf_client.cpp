// dqbf_client: load generator and one-shot client for dqbf_serve.
//
//   dqbf_client --file=FORMULA.dqdimacs [options]
//
// Options:
//   --host=ADDR          server address (default 127.0.0.1)
//   --port=N             server port (default 8080)
//   --jsonl              speak the newline-JSON protocol instead of HTTP
//   --connections=N      concurrent client connections (default 1)
//   --requests=N         total solve requests across all connections
//                        (default: one per connection)
//   --timeout-ms=N       per-request solver budget header/field
//   --rss-limit-mb=N     per-request memory budget header/field
//   --engine=NAME        hqs | hqs-bdd | portfolio[:N]
//   --certify            request a Skolem certificate with each SAT verdict
//                        (tallied under certs=; a 413 over-cap response
//                        still counts as a verdict)
//   --cache=on|off|bypass
//                        per-request result-cache override header/field
//                        (--cache-control= still accepted, deprecated)
//   --format=NAME        dqdimacs | dqcir ("" = server content sniff)
//   --session            JSONL protocol v2 session mode: each connection
//                        opens one session on the formula (after a {"v":2}
//                        handshake), sends its requests as `solve` ops
//                        against it, and closes it on exit.  Reconnects
//                        re-open (a disconnect closes server-side sessions).
//   --assume=LITS        assumption literals for session-mode solves
//                        (DIMACS, e.g. "1 -3")
//   --strategy=NAME      solve under the server's strategy spec NAME
//   --retries=N          retry budget per request for transport failures
//                        (connection refused/reset) and 429/503 rejections
//                        (default 3; 0 = fail fast).  Each retry reconnects
//                        and backs off exponentially with +/-25% jitter,
//                        never below the server's Retry-After.
//   --retry-base-ms=N    first retry delay (default 100, doubling per
//                        attempt, capped at 20x the base)
//
// Each connection sends its share of requests back to back (JSONL mode
// pipelines them) and tallies verdicts, busy rejections, and errors.  Exact
// latency percentiles are computed from the recorded per-request times;
// retried requests count their full wall time including backoff, which is
// what a caller of a supervised fleet actually observes across a worker
// respawn.  Exit code 0 when every request got a verdict, 1 otherwise.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/timer.hpp"
#include "src/runtime/api.hpp"
#include "src/service/client.hpp"

using namespace hqs;
using namespace hqs::service;

namespace {

int usage()
{
    std::cerr << "usage: dqbf_client --file=FORMULA.dqdimacs [--host=ADDR] "
                 "[--port=N] [--jsonl] [--connections=N] [--requests=N] "
                 "[--timeout-ms=N] [--rss-limit-mb=N] [--engine=NAME] [--certify] "
                 "[--cache=on|off|bypass] [--strategy=NAME] [--format=NAME] "
                 "[--session] [--assume=LITS] [--retries=N] [--retry-base-ms=N]\n";
    return 1;
}

bool parseSize(const std::string& text, std::size_t& out)
{
    try {
        std::size_t pos = 0;
        out = static_cast<std::size_t>(std::stoul(text, &pos));
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

struct Tally {
    std::size_t ok = 0;      ///< verdict received (any SolveResult)
    std::size_t busy = 0;    ///< 429 / busy row after the retry budget
    std::size_t errors = 0;  ///< transport failures, non-200 responses
    std::size_t certs = 0;   ///< responses carrying certificate bytes
    std::size_t retries = 0; ///< re-sent attempts (transport + 429/503)
    std::vector<double> latenciesUs;
};

/// One attempt's outcome, deciding whether the retry loop continues.
enum class Attempt {
    Verdict,   ///< ok (200 / 413-with-verdict / JSONL result row)
    Rejected,  ///< 429/503/busy row — retry after the server's hint
    Transport, ///< connect/send/read failure — reconnect and retry
    Fatal,     ///< non-retryable response (4xx etc.) — count an error
};

} // namespace

int main(int argc, char** argv)
{
    ignoreSigpipe();

    std::string host = "127.0.0.1";
    std::uint16_t port = 8080;
    bool jsonl = false;
    std::size_t connections = 1;
    std::size_t requests = 0;
    std::string file;
    api::SolveRequest request;
    bool useSession = false;
    std::string assume;
    std::size_t retries = 3;
    std::size_t retryBaseMs = 100;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto val = [&](const std::string& prefix) {
            return arg.substr(prefix.size());
        };
        std::size_t n = 0;
        std::string flagProblem;
        if (arg.rfind("--host=", 0) == 0) {
            host = val("--host=");
        } else if (arg.rfind("--port=", 0) == 0 && parseSize(val("--port="), n)) {
            port = static_cast<std::uint16_t>(n);
        } else if (arg == "--jsonl") {
            jsonl = true;
        } else if (arg.rfind("--connections=", 0) == 0 &&
                   parseSize(val("--connections="), n) && n > 0) {
            connections = n;
        } else if (arg.rfind("--requests=", 0) == 0 && parseSize(val("--requests="), n)) {
            requests = n;
        } else if (arg.rfind("--file=", 0) == 0) {
            file = val("--file=");
        } else if (arg == "--session") {
            useSession = true;
        } else if (arg.rfind("--assume=", 0) == 0) {
            assume = val("--assume=");
        } else if (arg.rfind("--cache-control=", 0) == 0) {
            // Single-release shim for the pre-v2 flag spelling.
            std::cerr << "dqbf_client: --cache-control= is deprecated, use --cache=\n";
            request.cacheControl = val("--cache-control=");
        } else if (api::applyCliRequestFlag(request, arg, &flagProblem)) {
            // Solver-request flags (--timeout-ms, --rss-limit-mb, --engine,
            // --certify, --cache, --strategy, --format) come from the same
            // api::requestFields() table the server parses with.
            if (!flagProblem.empty()) {
                std::cerr << "dqbf_client: " << flagProblem << "\n";
                return usage();
            }
        } else if (arg.rfind("--retries=", 0) == 0 && parseSize(val("--retries="), n)) {
            retries = n;
        } else if (arg.rfind("--retry-base-ms=", 0) == 0 &&
                   parseSize(val("--retry-base-ms="), n) && n > 0) {
            retryBaseMs = n;
        } else {
            return usage();
        }
    }
    if (file.empty()) return usage();
    if (useSession && !jsonl) {
        std::cerr << "dqbf_client: --session requires --jsonl (protocol v2)\n";
        return usage();
    }
    SolveRequestOptions ropts;
    ropts.timeoutSeconds = request.timeoutSeconds;
    ropts.rssLimitBytes = request.rssLimitBytes;
    ropts.certify = request.certify;
    ropts.cacheControl = request.cacheControl;
    ropts.strategy = request.strategy;
    ropts.format = request.format;
    // "hqs" is both the SolveRequest default and the server default; only a
    // non-default selection needs to go on the wire.
    if (request.engine != "hqs") ropts.engine = request.engine;
    std::ifstream in(file);
    if (!in) {
        std::cerr << "dqbf_client: cannot read " << file << "\n";
        return 1;
    }
    std::ostringstream formulaStream;
    formulaStream << in.rdbuf();
    const std::string formula = formulaStream.str();
    if (requests == 0) requests = connections;

    std::mutex mu;
    Tally total;
    std::atomic<std::size_t> nextRequest{0};
    Timer wall;

    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t t = 0; t < connections; ++t) {
        threads.emplace_back([&, t] {
            Tally local;
            BlockingClient client;
            std::string sessionId; ///< session mode: "" until opened on this conn
            const double baseSeconds = static_cast<double>(retryBaseMs) / 1000.0;
            const double capSeconds = baseSeconds * 20.0;
            // Session mode: one handshake + open per (re)connection — the
            // server closes a connection's sessions on disconnect, so a
            // reconnect must re-open.  Verdict here means "session ready".
            const auto ensureSession = [&](double& hintSeconds) {
                if (!sessionId.empty()) return Attempt::Verdict;
                if (!client.sendAll(buildJsonlHandshake(2))) return Attempt::Transport;
                std::string hs;
                if (!client.readLine(hs)) {
                    client.close();
                    return Attempt::Transport;
                }
                SolveRequestOptions oopts;
                oopts.op = "open";
                oopts.format = ropts.format;
                if (!client.sendAll(buildJsonlSolveRequest("open-" + std::to_string(t),
                                                           formula, oopts)))
                    return Attempt::Transport;
                std::string row;
                if (!client.readLine(row)) {
                    client.close();
                    return Attempt::Transport;
                }
                if (jsonStringField(row, "session", sessionId) && !sessionId.empty())
                    return Attempt::Verdict;
                if (row.find("\"busy\"") != std::string::npos ||
                    row.find("\"draining\"") != std::string::npos) {
                    hintSeconds = parseRetryAfterSeconds("", row, baseSeconds);
                    return Attempt::Rejected;
                }
                return Attempt::Fatal;
            };
            // One attempt: (re)connect if needed, send, read, classify.
            // Fills @p hintSeconds with the server's Retry-After on Rejected.
            const auto attemptOnce = [&](std::size_t seq, double& hintSeconds) {
                hintSeconds = 0;
                if (!client.connected()) {
                    sessionId.clear();
                    std::string error;
                    if (!client.connect(host, port, &error)) return Attempt::Transport;
                }
                bool sent;
                if (jsonl) {
                    SolveRequestOptions rowOpts = ropts;
                    std::string rowFormula = formula;
                    if (useSession) {
                        const Attempt ready = ensureSession(hintSeconds);
                        if (ready != Attempt::Verdict) return ready;
                        rowOpts.op = "solve";
                        rowOpts.session = sessionId;
                        rowOpts.assume = assume;
                        rowFormula.clear();
                    }
                    sent = client.sendAll(buildJsonlSolveRequest(
                        "c" + std::to_string(t) + "-" + std::to_string(seq), rowFormula,
                        rowOpts));
                } else {
                    sent = client.sendAll(
                        buildHttpSolveRequest(formula, ropts, /*keepAlive=*/true));
                }
                if (!sent) return Attempt::Transport;
                if (jsonl) {
                    std::string row;
                    if (!client.readLine(row)) {
                        client.close();
                        return Attempt::Transport;
                    }
                    std::string verdict;
                    if (jsonStringField(row, "result", verdict)) {
                        if (row.find("\"certificate\":{") != std::string::npos)
                            local.certs += 1;
                        return Attempt::Verdict;
                    }
                    if (row.find("\"busy\"") != std::string::npos ||
                        row.find("\"degraded\"") != std::string::npos ||
                        row.find("\"draining\"") != std::string::npos) {
                        hintSeconds = parseRetryAfterSeconds("", row, baseSeconds);
                        // Degraded/draining rows come from the supervisor's
                        // one-shot responder, which closes after answering.
                        if (row.find("\"error\"") != std::string::npos) client.close();
                        return Attempt::Rejected;
                    }
                    return Attempt::Fatal;
                }
                HttpResponseMsg rsp;
                if (!client.readResponse(rsp)) {
                    client.close();
                    return Attempt::Transport;
                }
                const std::string* conn = rsp.header("connection");
                if (conn && conn->find("close") != std::string::npos) client.close();
                // 413 on a certify request means "verdict delivered,
                // certificate over the server's byte cap" — a verdict, not a
                // transport error.
                if (rsp.status == 200 ||
                    (rsp.status == 413 &&
                     rsp.body.find("\"result\"") != std::string::npos)) {
                    if (rsp.body.find("\"certificate\":{") != std::string::npos)
                        local.certs += 1;
                    return Attempt::Verdict;
                }
                if (rsp.status == 429 || rsp.status == 503) {
                    const std::string* ra = rsp.header("retry-after");
                    hintSeconds =
                        parseRetryAfterSeconds(ra ? *ra : "", rsp.body, baseSeconds);
                    return Attempt::Rejected;
                }
                return Attempt::Fatal;
            };

            while (true) {
                const std::size_t seq = nextRequest.fetch_add(1);
                if (seq >= requests) break;
                Timer perRequest;
                Attempt outcome = Attempt::Transport;
                for (std::size_t attempt = 0; attempt <= retries; ++attempt) {
                    double hintSeconds = 0;
                    outcome = attemptOnce(seq, hintSeconds);
                    if (outcome == Attempt::Verdict || outcome == Attempt::Fatal) break;
                    if (attempt == retries) break; // budget exhausted
                    local.retries += 1;
                    const double delay = retryDelaySeconds(
                        static_cast<int>(attempt), baseSeconds, capSeconds, hintSeconds,
                        /*jitterSeed=*/(t << 20) ^ seq ^ (attempt << 40));
                    std::this_thread::sleep_for(std::chrono::duration<double>(delay));
                }
                switch (outcome) {
                case Attempt::Verdict: local.ok += 1; break;
                case Attempt::Rejected: local.busy += 1; break;
                default: local.errors += 1; break;
                }
                local.latenciesUs.push_back(perRequest.elapsedSeconds() * 1e6);
            }
            if (useSession && client.connected() && !sessionId.empty()) {
                // Best-effort close; the server also reaps on disconnect.
                SolveRequestOptions copts;
                copts.op = "close";
                copts.session = sessionId;
                std::string row;
                if (client.sendAll(buildJsonlSolveRequest("close-" + std::to_string(t),
                                                          "", copts)))
                    client.readLine(row);
            }
            std::lock_guard<std::mutex> lock(mu);
            total.ok += local.ok;
            total.busy += local.busy;
            total.errors += local.errors;
            total.certs += local.certs;
            total.retries += local.retries;
            total.latenciesUs.insert(total.latenciesUs.end(), local.latenciesUs.begin(),
                                     local.latenciesUs.end());
        });
    }
    for (std::thread& th : threads) th.join();

    const double wallMs = wall.elapsedMilliseconds();
    std::sort(total.latenciesUs.begin(), total.latenciesUs.end());
    const auto pct = [&](double q) -> double {
        if (total.latenciesUs.empty()) return 0;
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(total.latenciesUs.size() - 1) + 0.5);
        return total.latenciesUs[idx];
    };
    std::cout << "requests=" << requests << " ok=" << total.ok << " busy=" << total.busy
              << " errors=" << total.errors << " retries=" << total.retries;
    if (ropts.certify) std::cout << " certs=" << total.certs;
    std::cout << " wall_ms=" << wallMs << "\n";
    if (!total.latenciesUs.empty()) {
        std::cout << "latency_us p50=" << pct(0.50) << " p90=" << pct(0.90)
                  << " p99=" << pct(0.99) << " max=" << total.latenciesUs.back() << "\n";
    }
    return total.ok == requests ? 0 : 1;
}
