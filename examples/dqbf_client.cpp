// dqbf_client: load generator and one-shot client for dqbf_serve.
//
//   dqbf_client --file=FORMULA.dqdimacs [options]
//
// Options:
//   --host=ADDR          server address (default 127.0.0.1)
//   --port=N             server port (default 8080)
//   --jsonl              speak the newline-JSON protocol instead of HTTP
//   --connections=N      concurrent client connections (default 1)
//   --requests=N         total solve requests across all connections
//                        (default: one per connection)
//   --timeout-ms=N       per-request solver budget header/field
//   --rss-limit-mb=N     per-request memory budget header/field
//   --engine=NAME        hqs | hqs-bdd | portfolio[:N]
//   --certify            request a Skolem certificate with each SAT verdict
//                        (tallied under certs=; a 413 over-cap response
//                        still counts as a verdict)
//
// Each connection sends its share of requests back to back (JSONL mode
// pipelines them) and tallies verdicts, busy rejections, and errors.  Exact
// latency percentiles are computed from the recorded per-request times.
// Exit code 0 when every request got a verdict, 1 otherwise.
#include <algorithm>
#include <atomic>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/base/timer.hpp"
#include "src/service/client.hpp"

using namespace hqs;
using namespace hqs::service;

namespace {

int usage()
{
    std::cerr << "usage: dqbf_client --file=FORMULA.dqdimacs [--host=ADDR] "
                 "[--port=N] [--jsonl] [--connections=N] [--requests=N] "
                 "[--timeout-ms=N] [--rss-limit-mb=N] [--engine=NAME] [--certify]\n";
    return 1;
}

bool parseSize(const std::string& text, std::size_t& out)
{
    try {
        std::size_t pos = 0;
        out = static_cast<std::size_t>(std::stoul(text, &pos));
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

struct Tally {
    std::size_t ok = 0;      ///< verdict received (any SolveResult)
    std::size_t busy = 0;    ///< 429 / busy row
    std::size_t errors = 0;  ///< transport failures, non-200 responses
    std::size_t certs = 0;   ///< responses carrying certificate bytes
    std::vector<double> latenciesUs;
};

} // namespace

int main(int argc, char** argv)
{
    ignoreSigpipe();

    std::string host = "127.0.0.1";
    std::uint16_t port = 8080;
    bool jsonl = false;
    std::size_t connections = 1;
    std::size_t requests = 0;
    std::string file;
    SolveRequestOptions ropts;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto val = [&](const std::string& prefix) {
            return arg.substr(prefix.size());
        };
        std::size_t n = 0;
        if (arg.rfind("--host=", 0) == 0) {
            host = val("--host=");
        } else if (arg.rfind("--port=", 0) == 0 && parseSize(val("--port="), n)) {
            port = static_cast<std::uint16_t>(n);
        } else if (arg == "--jsonl") {
            jsonl = true;
        } else if (arg.rfind("--connections=", 0) == 0 &&
                   parseSize(val("--connections="), n) && n > 0) {
            connections = n;
        } else if (arg.rfind("--requests=", 0) == 0 && parseSize(val("--requests="), n)) {
            requests = n;
        } else if (arg.rfind("--file=", 0) == 0) {
            file = val("--file=");
        } else if (arg.rfind("--timeout-ms=", 0) == 0 &&
                   parseSize(val("--timeout-ms="), n)) {
            ropts.timeoutSeconds = static_cast<double>(n) / 1000.0;
        } else if (arg.rfind("--rss-limit-mb=", 0) == 0 &&
                   parseSize(val("--rss-limit-mb="), n)) {
            ropts.rssLimitBytes = n * 1024 * 1024;
        } else if (arg.rfind("--engine=", 0) == 0) {
            ropts.engine = val("--engine=");
        } else if (arg == "--certify") {
            ropts.certify = true;
        } else {
            return usage();
        }
    }
    if (file.empty()) return usage();
    std::ifstream in(file);
    if (!in) {
        std::cerr << "dqbf_client: cannot read " << file << "\n";
        return 1;
    }
    std::ostringstream formulaStream;
    formulaStream << in.rdbuf();
    const std::string formula = formulaStream.str();
    if (requests == 0) requests = connections;

    std::mutex mu;
    Tally total;
    std::atomic<std::size_t> nextRequest{0};
    Timer wall;

    std::vector<std::thread> threads;
    threads.reserve(connections);
    for (std::size_t t = 0; t < connections; ++t) {
        threads.emplace_back([&, t] {
            Tally local;
            BlockingClient client;
            std::string error;
            if (!client.connect(host, port, &error)) {
                std::lock_guard<std::mutex> lock(mu);
                std::cerr << "dqbf_client: " << error << "\n";
                total.errors += 1;
                return;
            }
            while (true) {
                const std::size_t seq = nextRequest.fetch_add(1);
                if (seq >= requests) break;
                Timer perRequest;
                bool sent;
                if (jsonl) {
                    sent = client.sendAll(buildJsonlSolveRequest(
                        "c" + std::to_string(t) + "-" + std::to_string(seq), formula,
                        ropts));
                } else {
                    sent = client.sendAll(
                        buildHttpSolveRequest(formula, ropts, /*keepAlive=*/true));
                }
                if (!sent) {
                    // Short or failed write: the server went away — count a
                    // disconnect and stop this connection, never abort.
                    local.errors += 1;
                    break;
                }
                bool gotReply = false;
                if (jsonl) {
                    std::string row;
                    gotReply = client.readLine(row);
                    if (gotReply) {
                        std::string verdict;
                        if (jsonStringField(row, "result", verdict)) {
                            local.ok += 1;
                            if (row.find("\"certificate\":{") != std::string::npos)
                                local.certs += 1;
                        } else if (row.find("\"busy\"") != std::string::npos) {
                            local.busy += 1;
                        } else {
                            local.errors += 1;
                        }
                    }
                } else {
                    HttpResponseMsg rsp;
                    gotReply = client.readResponse(rsp);
                    if (gotReply) {
                        // 413 on a certify request means "verdict delivered,
                        // certificate over the server's byte cap" — a
                        // verdict, not a transport error.
                        if (rsp.status == 200 ||
                            (rsp.status == 413 &&
                             rsp.body.find("\"result\"") != std::string::npos)) {
                            local.ok += 1;
                            if (rsp.body.find("\"certificate\":{") != std::string::npos)
                                local.certs += 1;
                        } else if (rsp.status == 429) {
                            local.busy += 1;
                        } else {
                            local.errors += 1;
                        }
                    }
                }
                if (!gotReply) {
                    local.errors += 1;
                    break;
                }
                local.latenciesUs.push_back(perRequest.elapsedSeconds() * 1e6);
            }
            std::lock_guard<std::mutex> lock(mu);
            total.ok += local.ok;
            total.busy += local.busy;
            total.errors += local.errors;
            total.certs += local.certs;
            total.latenciesUs.insert(total.latenciesUs.end(), local.latenciesUs.begin(),
                                     local.latenciesUs.end());
        });
    }
    for (std::thread& th : threads) th.join();

    const double wallMs = wall.elapsedMilliseconds();
    std::sort(total.latenciesUs.begin(), total.latenciesUs.end());
    const auto pct = [&](double q) -> double {
        if (total.latenciesUs.empty()) return 0;
        const auto idx = static_cast<std::size_t>(
            q * static_cast<double>(total.latenciesUs.size() - 1) + 0.5);
        return total.latenciesUs[idx];
    };
    std::cout << "requests=" << requests << " ok=" << total.ok << " busy=" << total.busy
              << " errors=" << total.errors;
    if (ropts.certify) std::cout << " certs=" << total.certs;
    std::cout << " wall_ms=" << wallMs << "\n";
    if (!total.latenciesUs.empty()) {
        std::cout << "latency_us p50=" << pct(0.50) << " p90=" << pct(0.90)
                  << " p99=" << pct(0.99) << " max=" << total.latenciesUs.back() << "\n";
    }
    return total.ok == requests ? 0 : 1;
}
