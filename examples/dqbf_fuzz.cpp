// dqbf_fuzz: randomized differential testing of the solving engines.
//
//   dqbf_fuzz [count=200] [seed=1] [--verbose]
//
// For each round, generate a random small DQBF and require that HQS (in
// several configurations), the iDQ-style baseline, and the full-expansion
// oracle agree; when SAT, additionally extract a Skolem certificate from
// the HQS elimination trace and verify it independently.  Exit code 0 iff
// no discrepancy was found.  This is the same harness the unit tests use,
// packaged as a tool for long soak runs.
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <string>

#include "src/base/rng.hpp"
#include "src/dqbf/dqbf_oracle.hpp"
#include "src/dqbf/hqs_solver.hpp"
#include "src/idq/idq_solver.hpp"

using namespace hqs;

namespace {

DqbfFormula randomDqbf(Rng& rng)
{
    DqbfFormula f;
    const unsigned nu = 2 + static_cast<unsigned>(rng.below(3));
    const unsigned ne = 2 + static_cast<unsigned>(rng.below(3));
    std::vector<Var> xs, all;
    for (unsigned i = 0; i < nu; ++i) xs.push_back(f.addUniversal());
    all = xs;
    for (unsigned i = 0; i < ne; ++i) {
        std::vector<Var> deps;
        for (Var x : xs) {
            if (rng.flip()) deps.push_back(x);
        }
        all.push_back(f.addExistential(std::move(deps)));
    }
    const unsigned clauses = 4 + static_cast<unsigned>(rng.below(12));
    for (unsigned c = 0; c < clauses; ++c) {
        Clause cl;
        for (unsigned j = 0; j < 2 + rng.below(2); ++j) {
            cl.push(Lit(all[rng.below(all.size())], rng.flip()));
        }
        f.matrix().addClause(std::move(cl));
    }
    return f;
}

} // namespace

int main(int argc, char** argv)
{
    unsigned count = 200;
    std::uint64_t seed = 1;
    bool verbose = false;
    if (argc > 1 && std::string(argv[1]) != "--verbose") count = std::atoi(argv[1]);
    if (argc > 2 && std::string(argv[2]) != "--verbose") seed = std::atoll(argv[2]);
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]) == "--verbose") verbose = true;
    }

    Rng rng(seed);
    unsigned sat = 0, unsat = 0, failures = 0;
    for (unsigned round = 0; round < count; ++round) {
        DqbfFormula f = randomDqbf(rng);
        const SolveResult expected = expansionDqbf(f);
        if (!isConclusive(expected)) continue;
        (expected == SolveResult::Sat ? sat : unsat) += 1;

        auto check = [&](const char* name, SolveResult got) {
            if (got != expected) {
                std::printf("round %u: %s says %s, oracle says %s\n", round, name,
                            toString(got).c_str(), toString(expected).c_str());
                writeDqdimacs(std::cout, f.toParsed());
                ++failures;
            }
        };

        for (auto selection : {HqsOptions::Selection::MaxSat, HqsOptions::Selection::Greedy,
                               HqsOptions::Selection::All}) {
            HqsOptions opts;
            opts.selection = selection;
            HqsSolver solver(opts);
            check("hqs", solver.solve(f));
        }
        {
            HqsOptions opts;
            opts.computeSkolem = true;
            HqsSolver solver(opts);
            check("hqs+skolem", solver.solve(f));
            if (expected == SolveResult::Sat) {
                if (!solver.skolemCertificate() ||
                    !verifyAigSkolemCertificate(f, *solver.skolemCertificate())) {
                    std::printf("round %u: INVALID skolem certificate\n", round);
                    writeDqdimacs(std::cout, f.toParsed());
                    ++failures;
                }
            }
        }
        {
            IdqSolver solver;
            check("idq", solver.solve(f));
        }
        if (verbose && round % 50 == 0) {
            std::printf("round %u: %u sat / %u unsat so far\n", round, sat, unsat);
        }
    }
    std::printf("fuzzed %u rounds (%u SAT, %u UNSAT): %u failures\n", count, sat, unsat,
                failures);
    return failures == 0 ? 0 : 1;
}
