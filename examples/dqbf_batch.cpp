// dqbf_batch: solve a directory (or explicit list) of DQDIMACS instances in
// parallel and stream structured results.
//
//   dqbf_batch [options] <dir | file.dqdimacs ...>
//
// Options:
//   --workers=N           worker threads (default: hardware concurrency)
//   --timeout=SECONDS     per-job wall-clock budget (default: none)
//   --node-limit=N        per-job AIG-node budget, the 8 GB memout stand-in
//   --portfolio[=N]       race the first N default engines per instance
//   --no-retry            disable the degraded retry after a memout
//   --jsonl=FILE          stream one JSON object per result to FILE
//                         (default: stdout, prefixed lines suppressed)
//
// JSONL schema per line:
//   {"instance": str, "result": "Sat|Unsat|Timeout|Memout|Unknown",
//    "wall_ms": num, "engine": str, "attempts": int, "degraded": bool,
//    "error"?: str}
//
// Exit code: 0 when every instance was definitively decided, 1 otherwise.
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/runtime/batch.hpp"

using namespace hqs;

namespace {

int usage()
{
    std::cerr << "usage: dqbf_batch [--workers=N] [--timeout=SECONDS] "
                 "[--node-limit=N] [--portfolio[=N]] [--no-retry] "
                 "[--jsonl=FILE] <dir | file.dqdimacs ...>\n";
    return 1;
}

// Numeric flag values must parse in full; a trailing suffix or garbage is a
// usage error rather than an uncaught std::sto* exception.
bool parseSize(const std::string& text, std::size_t& out)
{
    try {
        std::size_t pos = 0;
        out = static_cast<std::size_t>(std::stoul(text, &pos));
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

bool parseSeconds(const std::string& text, double& out)
{
    try {
        std::size_t pos = 0;
        out = std::stod(text, &pos);
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

} // namespace

int main(int argc, char** argv)
{
    BatchOptions opts;
    std::string jsonlPath;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--workers=", 0) == 0) {
            if (!parseSize(arg.substr(10), opts.numWorkers)) return usage();
        } else if (arg.rfind("--timeout=", 0) == 0) {
            if (!parseSeconds(arg.substr(10), opts.jobTimeoutSeconds)) return usage();
        } else if (arg.rfind("--node-limit=", 0) == 0) {
            if (!parseSize(arg.substr(13), opts.nodeLimit)) return usage();
        } else if (arg == "--portfolio") {
            opts.portfolio = true;
        } else if (arg.rfind("--portfolio=", 0) == 0) {
            opts.portfolio = true;
            if (!parseSize(arg.substr(12), opts.portfolioEngines)) return usage();
        } else if (arg == "--no-retry") {
            opts.retryOnMemout = false;
        } else if (arg.rfind("--jsonl=", 0) == 0) {
            jsonlPath = arg.substr(8);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty()) return usage();

    // A single directory argument expands to its *.dqdimacs files.
    std::vector<std::string> files;
    if (inputs.size() == 1 && !inputs[0].ends_with(".dqdimacs")) {
        try {
            files = BatchScheduler::collectInstances(inputs[0]);
        } catch (const std::exception& e) {
            std::cerr << "dqbf_batch: " << e.what() << "\n";
            return 1;
        }
        if (files.empty()) {
            std::cerr << "dqbf_batch: no .dqdimacs files in " << inputs[0] << "\n";
            return 1;
        }
    } else {
        files = inputs;
    }

    std::ofstream jsonlFile;
    std::ostream* jsonl = &std::cout;
    if (!jsonlPath.empty()) {
        jsonlFile.open(jsonlPath);
        if (!jsonlFile) {
            std::cerr << "dqbf_batch: cannot open " << jsonlPath << "\n";
            return 1;
        }
        jsonl = &jsonlFile;
    }

    BatchScheduler scheduler(opts);
    const std::vector<BatchJobResult> results = scheduler.run(files, jsonl);

    std::size_t sat = 0, unsat = 0, other = 0;
    for (const BatchJobResult& r : results) {
        if (r.result == SolveResult::Sat) ++sat;
        else if (r.result == SolveResult::Unsat) ++unsat;
        else ++other;
    }
    if (!jsonlPath.empty()) {
        std::cout << "c " << results.size() << " instances: " << sat << " SAT, "
                  << unsat << " UNSAT, " << other << " unresolved\n";
    }
    return other == 0 ? 0 : 1;
}
