// dqbf_batch: solve a directory (or explicit list) of DQDIMACS and DQCIR
// instances in parallel and stream structured results.  Circuit instances
// (*.dqcir) lower through the Tseitin front end at solve time and never
// touch --cache-dir (cache.bypass.format).
//
//   dqbf_batch [options] <dir | file.dqdimacs | file.dqcir ...>
//   dqbf_batch --resume=out.jsonl [options] [dir | file ...]
//
// Options:
//   --workers=N           worker threads (default: hardware concurrency)
//   --timeout=SECONDS     per-job wall-clock budget (default: none)
//   --node-limit=N        per-job AIG-node budget, the 8 GB memout stand-in
//   --rss-limit=MB        cooperative memout when process RSS crosses MB
//   --portfolio[=N]       race the first N default engines per instance
//   --certify             extract a Skolem certificate for every SAT verdict
//                         and self-check it through the independent checker;
//                         the outcome lands in the row's "certificate" block
//   --no-retry            disable the degradation ladder (single attempt)
//   --no-dedup            solve canonically identical instances separately
//                         instead of once (default: the first occurrence is
//                         solved and later duplicates copy its row, with a
//                         "dedup_of" field naming the representative)
//   --session-group       solve delta families (same filename stem up to the
//                         last '_', identical prefix) through one shared
//                         solve session: the clause-multiset intersection is
//                         opened once and each instance solves as an
//                         add/solve/retract delta, reusing untouched
//                         connected components; rows carry a "session"
//                         block with the reuse accounting
//   --strategy=FILE       solve under a strategy spec (JSON): engine lineup,
//                         degradation ladder, and cache policy come from the
//                         spec (see README "Result cache & strategy specs")
//   --cache-dir=DIR       consult/update a persistent result cache in DIR;
//                         rows answered from it carry "cached":true and
//                         rung "cache"
//   --jsonl=FILE          stream one JSON object per result to FILE
//                         (default: stdout, prefixed lines suppressed)
//   --resume=FILE         treat FILE as the journal of an earlier run:
//                         skip instances it records as conclusive, re-queue
//                         everything else, and append new results to FILE.
//                         Without explicit inputs the instance list is taken
//                         from the journal itself.
//
// JSONL schema per line:
//   {"instance": str, "result": "SAT|UNSAT|TIMEOUT|MEMOUT|UNKNOWN",
//    "wall_ms": num, "engine": str, "attempts": int, "degraded": bool,
//    "rung"?: str, "failure"?: {"kind": str, "site": str, "what": str},
//    "error"?: str,
//    "metrics"?: {"preprocess_ms": num, "elim_ms": num, "qbf_ms": num,
//                 "fraig_ms": num, "peak_aig_nodes": int,
//                 "eliminations": int, "copies": int},
//    "certificate"?: {"valid": bool, "status": str, "extract_ms": num,
//                     "check_ms": num, "size_nodes": int},
//    "families"?: {"winner": str, "raced": {family: best_result, ...}}}
// The "metrics" block comes from the per-job metrics-registry scope
// (src/obs/); it survives the JSONL round-trip, so --resume keeps the
// fields recorded for already-conclusive instances.  The "certificate"
// block appears for SAT verdicts under --certify; on a portfolio
// disagreement the "failure" block's site is "portfolio.certcheck" and its
// what-text names the engine the checker vindicated.  The "families" block
// records the engine-family accounting of a portfolio race (which family's
// racer won, and the best result each family reached).
//
// Exit code: 0 when every instance was definitively decided, 1 otherwise.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/cache/result_cache.hpp"
#include "src/runtime/api.hpp"
#include "src/runtime/batch.hpp"
#include "src/strategy/spec.hpp"

using namespace hqs;

namespace {

int usage()
{
    std::cerr << "usage: dqbf_batch [--workers=N] [--timeout=SECONDS] "
                 "[--node-limit=N] [--rss-limit=MB] [--portfolio[=N]] "
                 "[--certify] [--no-retry] [--no-dedup] [--session-group] "
                 "[--strategy=FILE] "
                 "[--cache-dir=DIR] [--jsonl=FILE] [--resume=FILE] "
                 "<dir | file.dqdimacs | file.dqcir ...>\n";
    return 1;
}

} // namespace

int main(int argc, char** argv)
{
    BatchOptions opts;
    // Budgets funnel through the shared SolveRequest so a nan/negative
    // timeout is rejected by the same validate() every entry point uses.
    api::SolveRequest request;
    std::string jsonlPath;
    std::string resumePath;
    std::string strategyPath;
    std::string cacheDir;
    std::vector<std::string> inputs;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--workers=", 0) == 0) {
            if (!api::parseSize(arg.substr(10), &opts.numWorkers)) return usage();
        } else if (arg.rfind("--timeout=", 0) == 0) {
            if (!api::parseSeconds(arg.substr(10), &request.timeoutSeconds)) return usage();
        } else if (arg.rfind("--node-limit=", 0) == 0) {
            if (!api::parseSize(arg.substr(13), &request.nodeLimit)) return usage();
        } else if (arg.rfind("--rss-limit=", 0) == 0) {
            if (!api::parseMegabytes(arg.substr(12), &request.rssLimitBytes)) return usage();
        } else if (arg == "--portfolio") {
            request.engine = "portfolio";
        } else if (arg.rfind("--portfolio=", 0) == 0) {
            request.engine = "portfolio:" + arg.substr(12);
        } else if (arg == "--certify") {
            request.certify = true;
        } else if (arg == "--no-retry") {
            opts.ladder.resize(1);
        } else if (arg == "--no-dedup") {
            opts.dedup = false;
        } else if (arg == "--session-group") {
            opts.sessionGroup = true;
        } else if (arg.rfind("--strategy=", 0) == 0) {
            strategyPath = arg.substr(11);
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cacheDir = arg.substr(12);
        } else if (arg.rfind("--jsonl=", 0) == 0) {
            jsonlPath = arg.substr(8);
        } else if (arg.rfind("--resume=", 0) == 0) {
            resumePath = arg.substr(9);
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            inputs.push_back(arg);
        }
    }
    if (inputs.empty() && resumePath.empty()) return usage();
    if (const std::string err = request.firstError(); !err.empty()) {
        std::cerr << "dqbf_batch: invalid request: " << err << "\n";
        return usage();
    }
    opts.jobTimeoutSeconds = request.timeoutSeconds;
    opts.nodeLimit = request.nodeLimit;
    opts.rssLimitBytes = request.rssLimitBytes;
    opts.certify = request.certify;
    if (const api::EngineSpec spec = *request.parsedEngine();
        spec.kind == api::EngineSpec::Kind::Portfolio) {
        opts.portfolio = true;
        opts.portfolioEngines = spec.portfolioEngines;
    }
    if (!strategyPath.empty()) {
        strategy::StrategySpec spec;
        std::vector<strategy::SpecError> errors;
        if (!strategy::loadStrategySpecFile(strategyPath, &spec, &errors)) {
            std::cerr << "dqbf_batch: invalid strategy spec " << strategyPath
                      << ":\n" << strategy::toString(errors);
            return 1;
        }
        opts.strategy = spec;
    }
    if (!cacheDir.empty()) {
        cache::CacheConfig cfg;
        cfg.dir = cacheDir;
        if (opts.strategy) {
            cfg.maxBytes = opts.strategy->cache.maxBytes;
            cfg.ttlSeconds = opts.strategy->cache.ttlSeconds;
        }
        opts.resultCache = std::make_shared<cache::ResultCache>(cfg);
    }

    // The journal of the interrupted run: its conclusive verdicts stand,
    // everything else (crashed, cancelled, timed out, never started) is
    // re-queued.
    std::vector<BatchJobResult> journal;
    std::unordered_set<std::string> alreadyDone;
    if (!resumePath.empty()) {
        std::ifstream in(resumePath);
        if (!in) {
            std::cerr << "dqbf_batch: cannot read resume journal " << resumePath << "\n";
            return 1;
        }
        journal = readJournal(in);
        alreadyDone = conclusiveInstances(journal);
    }

    // A single directory argument expands to its *.dqdimacs and *.dqcir
    // files; with --resume and no inputs, the journal supplies the list.
    std::vector<std::string> files;
    if (inputs.empty()) {
        for (const BatchJobResult& r : journal) files.push_back(r.instance);
        std::sort(files.begin(), files.end());
    } else if (inputs.size() == 1 && !inputs[0].ends_with(".dqdimacs") &&
               !inputs[0].ends_with(".dqcir")) {
        try {
            files = BatchScheduler::collectInstances(inputs[0]);
        } catch (const std::exception& e) {
            std::cerr << "dqbf_batch: " << e.what() << "\n";
            return 1;
        }
        if (files.empty()) {
            std::cerr << "dqbf_batch: no .dqdimacs or .dqcir files in " << inputs[0]
                      << "\n";
            return 1;
        }
    } else {
        files = inputs;
    }

    std::vector<std::string> toRun;
    for (const std::string& f : files)
        if (!alreadyDone.contains(f)) toRun.push_back(f);

    std::ofstream jsonlFile;
    std::ostream* jsonl = &std::cout;
    if (!resumePath.empty() && jsonlPath.empty()) jsonlPath = resumePath;
    if (!jsonlPath.empty()) {
        // Appending keeps the journal's history; readJournal takes the last
        // entry per instance, so re-runs supersede their old records.
        // Unbuffered + O_APPEND ("app") makes each row exactly one write(2)
        // of a pre-formatted line (see toJsonlLine), so a kill can truncate
        // only the final row and a concurrent writer can never interleave
        // bytes inside a row.
        jsonlFile.rdbuf()->pubsetbuf(nullptr, 0);
        const auto mode = (jsonlPath == resumePath) ? std::ios::app : std::ios::out;
        jsonlFile.open(jsonlPath, mode);
        if (!jsonlFile) {
            std::cerr << "dqbf_batch: cannot open " << jsonlPath << "\n";
            return 1;
        }
        jsonl = &jsonlFile;
    }

    BatchScheduler scheduler(opts);
    const std::vector<BatchJobResult> fresh = scheduler.run(toRun, jsonl);

    // Final tally: carried-over conclusive verdicts plus this run's results.
    std::size_t sat = 0, unsat = 0, other = 0, carried = 0;
    auto tally = [&](const BatchJobResult& r) {
        if (r.result == SolveResult::Sat) ++sat;
        else if (r.result == SolveResult::Unsat) ++unsat;
        else ++other;
    };
    for (const std::string& f : files) {
        if (!alreadyDone.contains(f)) continue;
        for (const BatchJobResult& r : journal) {
            if (r.instance == f) {
                tally(r);
                ++carried;
                break;
            }
        }
    }
    for (const BatchJobResult& r : fresh) tally(r);

    if (!jsonlPath.empty()) {
        std::cout << "c " << (carried + fresh.size()) << " instances: " << sat << " SAT, "
                  << unsat << " UNSAT, " << other << " unresolved";
        if (carried != 0) std::cout << " (" << carried << " carried from journal)";
        std::cout << "\n";
        for (const RungStats& rs : scheduler.rungStats()) {
            if (rs.attempts == 0) continue;
            std::cout << "c rung " << rs.name << ": " << rs.attempts << " attempts, "
                      << rs.conclusive << " conclusive, " << rs.memouts << " memouts, "
                      << rs.failures << " failures\n";
        }
    }
    return other == 0 ? 0 : 1;
}
