// dqbf_serve: put the DQBF solver stack behind a socket.
//
//   dqbf_serve [options]
//
// Options:
//   --host=ADDR           bind address (default: 127.0.0.1)
//   --port=N              HTTP port (default 8080; 0 = ephemeral)
//   --jsonl-port=N        newline-JSON port (default 8081; 0 = ephemeral)
//   --no-jsonl            disable the JSONL listener
//   --max-inflight=N      concurrent solves (default: hardware concurrency)
//   --queue=N             admitted-but-waiting solves beyond max-inflight
//                         before 429/busy (default 64)
//   --timeout=SECONDS     default per-request wall-clock budget (0 = none)
//   --rss-limit=MB        default cooperative memout budget (0 = none)
//   --node-limit=N        AIG-node budget forwarded to the engines
//   --retry-after=SECONDS advisory Retry-After on 429 (default 1)
//
// Endpoints: POST /solve (DQDIMACS body; timeout-ms / rss-limit-mb / engine
// headers), GET /metrics (Prometheus), GET /healthz, GET /stats.  The JSONL
// port takes one {"id":...,"formula":...} row per line.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight solves,
// flush every response, exit 0.  A second signal cancels in-flight solves.
#include <cmath>
#include <iostream>
#include <string>

#include "src/service/client.hpp"
#include "src/service/server.hpp"

using namespace hqs;
using namespace hqs::service;

namespace {

int usage()
{
    std::cerr << "usage: dqbf_serve [--host=ADDR] [--port=N] [--jsonl-port=N] "
                 "[--no-jsonl] [--max-inflight=N] [--queue=N] "
                 "[--timeout=SECONDS] [--rss-limit=MB] [--node-limit=N] "
                 "[--retry-after=SECONDS]\n";
    return 1;
}

bool parseSize(const std::string& text, std::size_t& out)
{
    try {
        std::size_t pos = 0;
        out = static_cast<std::size_t>(std::stoul(text, &pos));
        return pos == text.size();
    } catch (const std::exception&) {
        return false;
    }
}

bool parseSeconds(const std::string& text, double& out)
{
    try {
        std::size_t pos = 0;
        out = std::stod(text, &pos);
        return pos == text.size() && std::isfinite(out) && out >= 0;
    } catch (const std::exception&) {
        return false;
    }
}

} // namespace

int main(int argc, char** argv)
{
    ignoreSigpipe();

    ServiceOptions opts;
    opts.httpPort = 8080;
    opts.jsonlPort = 8081;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto val = [&](const std::string& prefix) {
            return arg.substr(prefix.size());
        };
        std::size_t n = 0;
        double secs = 0;
        if (arg.rfind("--host=", 0) == 0) {
            opts.bindAddress = val("--host=");
        } else if (arg.rfind("--port=", 0) == 0 && parseSize(val("--port="), n)) {
            opts.httpPort = static_cast<std::uint16_t>(n);
        } else if (arg.rfind("--jsonl-port=", 0) == 0 &&
                   parseSize(val("--jsonl-port="), n)) {
            opts.jsonlPort = static_cast<std::uint16_t>(n);
        } else if (arg == "--no-jsonl") {
            opts.enableJsonl = false;
        } else if (arg.rfind("--max-inflight=", 0) == 0 &&
                   parseSize(val("--max-inflight="), n)) {
            opts.maxInflight = n;
        } else if (arg.rfind("--queue=", 0) == 0 && parseSize(val("--queue="), n)) {
            opts.maxQueue = n;
        } else if (arg.rfind("--timeout=", 0) == 0 &&
                   parseSeconds(val("--timeout="), secs)) {
            opts.defaultTimeoutSeconds = secs;
        } else if (arg.rfind("--rss-limit=", 0) == 0 &&
                   parseSize(val("--rss-limit="), n)) {
            opts.defaultRssLimitBytes = n * 1024 * 1024;
        } else if (arg.rfind("--node-limit=", 0) == 0 &&
                   parseSize(val("--node-limit="), n)) {
            opts.nodeLimit = n;
        } else if (arg.rfind("--retry-after=", 0) == 0 &&
                   parseSeconds(val("--retry-after="), secs)) {
            opts.retryAfterSeconds = secs;
        } else {
            return usage();
        }
    }

    SolverService service(opts);
    std::string error;
    if (!service.start(&error)) {
        std::cerr << "dqbf_serve: " << error << "\n";
        return 1;
    }
    SolverService::installSignalDrain(&service);

    std::cout << "dqbf_serve listening: http=" << opts.bindAddress << ":"
              << service.httpPort();
    if (opts.enableJsonl)
        std::cout << " jsonl=" << opts.bindAddress << ":" << service.jsonlPort();
    std::cout << std::endl;

    service.waitForDrained();
    const ServiceCounters& c = service.counters();
    std::cout << "dqbf_serve drained: requests="
              << c.requests.load() << " solved=" << c.solvesCompleted.load()
              << " rejected=" << (c.rejectedBusy.load() + c.rejectedDraining.load())
              << " disconnect_cancels=" << c.disconnectCancels.load() << std::endl;
    return 0;
}
