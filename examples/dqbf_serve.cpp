// dqbf_serve: put the DQBF solver stack behind a socket.
//
//   dqbf_serve [options]
//
// Options:
//   --host=ADDR           bind address (default: 127.0.0.1)
//   --port=N              HTTP port (default 8080; 0 = ephemeral)
//   --jsonl-port=N        newline-JSON port (default 8081; 0 = ephemeral)
//   --no-jsonl            disable the JSONL listener
//   --max-inflight=N      concurrent solves (default: hardware concurrency)
//   --queue=N             admitted-but-waiting solves beyond max-inflight
//                         before 429/busy (default 64)
//   --timeout=SECONDS     default per-request wall-clock budget (0 = none)
//   --rss-limit=MB        default cooperative memout budget (0 = none)
//   --node-limit=N        AIG-node budget forwarded to the engines
//   --retry-after=SECONDS advisory Retry-After on 429 (default 1)
//   --cert-max-bytes=N    largest certificate returned to a `certify`
//                         request (default 4 MiB; past it HTTP answers 413,
//                         JSONL rows carry a certificate_error field)
//   --cert-self-check     run the independent certificate checker on every
//                         certificate before replying; a failing artifact is
//                         withheld and counted in /stats
//   --max-sessions=N      resident solve-session bound (JSONL protocol v2);
//                         opening past it evicts the least recently used
//                         session (default 64; 0 = unbounded)
//   --session-ttl=SECONDS idle session lifetime (default 0 = no expiry);
//                         ops on an expired session answer session-gone
//
// Request shaping (see README "Result cache & strategy specs"):
//   --strategy=FILE       load a strategy spec (JSON) and make it the
//                         server's default: engine lineup, degradation
//                         ladder, and cache policy come from the spec.
//                         Requests select it by name or leave `strategy`
//                         empty.
//   --cache               enable the in-memory result cache
//   --cache-dir=DIR       enable the cache and persist entries in DIR (one
//                         file per canonical hash; shared by fleet workers)
//   --cache-bytes=N       in-memory shard byte budget (default 64 MiB or
//                         the spec's cache.max_bytes)
//   --cache-ttl=SECONDS   entry lifetime (default: no expiry or the spec's
//                         cache.ttl_seconds)
//
// Fleet mode (see README "Operations"):
//   --workers=N           fork N supervised worker processes sharing the
//                         service ports via SO_REUSEPORT; the master only
//                         supervises (death classification, respawn with
//                         backoff, crash-loop breaker, merged metrics).
//                         0 (default) = single-process serve.
//   --admin-port=N        master admin listener: merged GET /metrics, fleet
//                         GET /healthz + /stats (default 8082; 0 = ephemeral)
//   --worker-as-limit=MB  hard per-worker address-space cap
//                         (setrlimit(RLIMIT_AS)) under the cooperative
//                         --rss-limit watchdog (0 = none)
//
// Endpoints: POST /solve (DQDIMACS body; timeout-ms / rss-limit-mb / engine /
// certify headers), GET /metrics (Prometheus), GET /healthz, GET /stats.  The
// JSONL port takes one {"id":...,"formula":...,"certify":true} row per line.
//
// SIGTERM/SIGINT drain gracefully: stop accepting, finish in-flight solves,
// flush every response, exit 0.  A second signal cancels in-flight solves.
// In fleet mode the drain propagates SIGTERM to every worker and the master
// exits after the last worker is reaped.
#include <cmath>
#include <iostream>
#include <memory>
#include <string>

#include "src/cache/result_cache.hpp"
#include "src/runtime/api.hpp"
#include "src/service/client.hpp"
#include "src/service/server.hpp"
#include "src/service/supervisor.hpp"
#include "src/strategy/spec.hpp"

using namespace hqs;
using namespace hqs::service;

namespace {

int usage()
{
    std::cerr << "usage: dqbf_serve [--host=ADDR] [--port=N] [--jsonl-port=N] "
                 "[--no-jsonl] [--max-inflight=N] [--queue=N] "
                 "[--timeout=SECONDS] [--rss-limit=MB] [--node-limit=N] "
                 "[--retry-after=SECONDS] [--cert-max-bytes=N] "
                 "[--cert-self-check] [--max-sessions=N] [--session-ttl=SECONDS] "
                 "[--strategy=FILE] [--cache] "
                 "[--cache-dir=DIR] [--cache-bytes=N] [--cache-ttl=SECONDS] "
                 "[--workers=N] [--admin-port=N] [--worker-as-limit=MB]\n";
    return 1;
}

int runFleet(const ServiceOptions& opts, int workers, std::uint16_t adminPort,
             std::size_t workerAsLimitBytes)
{
    SupervisorOptions sopts;
    sopts.service = opts;
    sopts.workers = workers;
    sopts.adminPort = adminPort;
    sopts.workerAddressSpaceLimitBytes = workerAsLimitBytes;
    Supervisor fleet(sopts);
    std::string error;
    if (!fleet.start(&error)) {
        std::cerr << "dqbf_serve: " << error << "\n";
        return 1;
    }
    Supervisor::installSignalDrain(&fleet);

    std::cout << "dqbf_serve fleet: workers=" << workers << " http="
              << opts.bindAddress << ":" << fleet.httpPort();
    if (opts.enableJsonl)
        std::cout << " jsonl=" << opts.bindAddress << ":" << fleet.jsonlPort();
    std::cout << " admin=" << opts.bindAddress << ":" << fleet.adminPort()
              << std::endl;

    fleet.waitForExit();
    std::cout << "dqbf_serve fleet drained: respawns=" << fleet.totalRespawns()
              << " crashes=" << fleet.totalCrashes()
              << " oomkills=" << fleet.totalOomKills()
              << " crashed_requests=" << fleet.crashReports().size() << std::endl;
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    ignoreSigpipe();

    ServiceOptions opts;
    opts.httpPort = 8080;
    opts.jsonlPort = 8081;
    // The server-wide default budgets go through the same SolveRequest
    // validation as per-request budgets, so `--timeout=nan` is rejected here
    // exactly as a `timeout-ms: nan` header would be.
    api::SolveRequest defaults;
    std::size_t workers = 0;
    std::size_t adminPort = 8082;
    std::size_t workerAsLimitBytes = 0;
    std::string strategyPath;
    std::string cacheDir;
    std::size_t cacheBytes = 0; // 0 = spec / built-in default
    double cacheTtl = -1;       // <0 = spec / built-in default
    bool cacheOn = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto val = [&](const std::string& prefix) {
            return arg.substr(prefix.size());
        };
        std::size_t n = 0;
        double secs = 0;
        if (arg.rfind("--host=", 0) == 0) {
            opts.bindAddress = val("--host=");
        } else if (arg.rfind("--port=", 0) == 0 && api::parseSize(val("--port="), &n)) {
            opts.httpPort = static_cast<std::uint16_t>(n);
        } else if (arg.rfind("--jsonl-port=", 0) == 0 &&
                   api::parseSize(val("--jsonl-port="), &n)) {
            opts.jsonlPort = static_cast<std::uint16_t>(n);
        } else if (arg == "--no-jsonl") {
            opts.enableJsonl = false;
        } else if (arg.rfind("--max-inflight=", 0) == 0 &&
                   api::parseSize(val("--max-inflight="), &n)) {
            opts.maxInflight = n;
        } else if (arg.rfind("--queue=", 0) == 0 && api::parseSize(val("--queue="), &n)) {
            opts.maxQueue = n;
        } else if (arg.rfind("--timeout=", 0) == 0 &&
                   api::parseSeconds(val("--timeout="), &defaults.timeoutSeconds)) {
            // validated below
        } else if (arg.rfind("--rss-limit=", 0) == 0 &&
                   api::parseMegabytes(val("--rss-limit="), &defaults.rssLimitBytes)) {
            // validated below
        } else if (arg.rfind("--node-limit=", 0) == 0 &&
                   api::parseSize(val("--node-limit="), &defaults.nodeLimit)) {
            // validated below
        } else if (arg.rfind("--retry-after=", 0) == 0 &&
                   api::parseSeconds(val("--retry-after="), &secs) &&
                   std::isfinite(secs) && secs >= 0) {
            opts.retryAfterSeconds = secs;
        } else if (arg.rfind("--cert-max-bytes=", 0) == 0 &&
                   api::parseSize(val("--cert-max-bytes="), &n)) {
            opts.maxCertificateBytes = n;
        } else if (arg == "--cert-self-check") {
            opts.certSelfCheck = true;
        } else if (arg.rfind("--max-sessions=", 0) == 0 &&
                   api::parseSize(val("--max-sessions="), &n)) {
            opts.maxSessions = n;
        } else if (arg.rfind("--session-ttl=", 0) == 0 &&
                   api::parseSeconds(val("--session-ttl="), &secs) &&
                   std::isfinite(secs) && secs >= 0) {
            opts.sessionTtlSeconds = secs;
        } else if (arg.rfind("--strategy=", 0) == 0) {
            strategyPath = val("--strategy=");
        } else if (arg == "--cache") {
            cacheOn = true;
        } else if (arg.rfind("--cache-dir=", 0) == 0) {
            cacheDir = val("--cache-dir=");
            cacheOn = true;
        } else if (arg.rfind("--cache-bytes=", 0) == 0 &&
                   api::parseSize(val("--cache-bytes="), &cacheBytes)) {
            cacheOn = true;
        } else if (arg.rfind("--cache-ttl=", 0) == 0 &&
                   api::parseSeconds(val("--cache-ttl="), &cacheTtl) &&
                   std::isfinite(cacheTtl) && cacheTtl >= 0) {
            cacheOn = true;
        } else if (arg.rfind("--workers=", 0) == 0 &&
                   api::parseSize(val("--workers="), &workers)) {
            // 0 = single-process
        } else if (arg.rfind("--admin-port=", 0) == 0 &&
                   api::parseSize(val("--admin-port="), &adminPort)) {
            // fleet mode only
        } else if (arg.rfind("--worker-as-limit=", 0) == 0 &&
                   api::parseMegabytes(val("--worker-as-limit="),
                                       &workerAsLimitBytes)) {
            // fleet mode only
        } else {
            return usage();
        }
    }
    if (const std::string err = defaults.firstError(); !err.empty()) {
        std::cerr << "dqbf_serve: invalid request defaults: " << err << "\n";
        return usage();
    }
    opts.defaultTimeoutSeconds = defaults.timeoutSeconds;
    opts.defaultRssLimitBytes = defaults.rssLimitBytes;
    opts.nodeLimit = defaults.nodeLimit;

    strategy::StrategySpec spec;
    bool haveSpec = false;
    if (!strategyPath.empty()) {
        std::vector<strategy::SpecError> errors;
        if (!strategy::loadStrategySpecFile(strategyPath, &spec, &errors)) {
            std::cerr << "dqbf_serve: invalid strategy spec " << strategyPath
                      << ":\n" << strategy::toString(errors);
            return 1;
        }
        haveSpec = true;
        opts.strategies["default"] = spec;
        opts.strategies[spec.name] = spec;
    }
    if (cacheOn) {
        cache::CacheConfig cfg;
        cfg.dir = cacheDir;
        if (haveSpec) {
            cfg.maxBytes = spec.cache.maxBytes;
            cfg.ttlSeconds = spec.cache.ttlSeconds;
        }
        if (cacheBytes > 0) cfg.maxBytes = cacheBytes;
        if (cacheTtl >= 0) cfg.ttlSeconds = cacheTtl;
        opts.resultCache = std::make_shared<cache::ResultCache>(cfg);
    }

    if (workers > 0)
        return runFleet(opts, static_cast<int>(workers),
                        static_cast<std::uint16_t>(adminPort), workerAsLimitBytes);

    SolverService service(opts);
    std::string error;
    if (!service.start(&error)) {
        std::cerr << "dqbf_serve: " << error << "\n";
        return 1;
    }
    SolverService::installSignalDrain(&service);

    std::cout << "dqbf_serve listening: http=" << opts.bindAddress << ":"
              << service.httpPort();
    if (opts.enableJsonl)
        std::cout << " jsonl=" << opts.bindAddress << ":" << service.jsonlPort();
    std::cout << std::endl;

    service.waitForDrained();
    const ServiceCounters& c = service.counters();
    std::cout << "dqbf_serve drained: requests="
              << c.requests.load() << " solved=" << c.solvesCompleted.load()
              << " rejected=" << (c.rejectedBusy.load() + c.rejectedDraining.load())
              << " disconnect_cancels=" << c.disconnectCancels.load() << std::endl;
    return 0;
}
